"""Table I: GPU kernel-timing accuracy, IPM vs the CUDA profiler.

Runs the eight CUDA-SDK benchmark models with both observers active —
IPM's event-bracket timing and the (driver-level) profiler — and
regenerates the table.  The reproduced claims:

* invocation counts match the paper **exactly**;
* IPM is always ≥ the profiler (the event brackets include the launch
  gap and event latency);
* the relative difference is small (sub-2 %) and largest for the
  short-kernel benchmarks (scan, MonteCarlo).
"""

import pytest

from repro.analysis import Comparison, format_comparisons, format_table
from repro.apps.sdk import PAPER_TABLE1, SDK_BENCHMARKS
from repro.cluster import run_job
from repro.core import IpmConfig

from conftest import emit, once


def _run_all():
    rows = {}
    for name, app in SDK_BENCHMARKS.items():
        res = run_job(app, 1, command=name, ipm_config=IpmConfig(),
                      cuda_profile=True, seed=42)
        prof = res.profilers[0]
        rows[name] = {
            "invocations": prof.kernel_invocations(),
            "profiler": prof.kernel_time_total(),
            "ipm": res.report.tasks[0].gpu_exec_time(),
        }
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_kernel_timing_accuracy(benchmark):
    rows = once(benchmark, _run_all)

    table_rows = []
    comparisons = []
    for name, row in PAPER_TABLE1.items():
        m = rows[name]
        diff_pct = 100.0 * (m["ipm"] - m["profiler"]) / m["profiler"]
        table_rows.append([
            name, m["invocations"], m["profiler"], m["ipm"],
            f"{diff_pct:.2f}", f"{row.paper_difference_pct:.2f}",
        ])
        comparisons.append(Comparison(
            "Table I", f"{name} profiler total", row.profiler_seconds,
            m["profiler"], "s", rel_tol=0.05,
        ))
    text = format_table(
        ["Benchmark", "Invocations", "Profiler[s]", "IPM[s]",
         "Diff[%]", "paper Diff[%]"],
        table_rows,
        title="Table I — GPU kernel execution time: CUDA profiler vs IPM",
    )
    text += "\n\n" + format_comparisons(comparisons, "calibration check")
    emit("table1_accuracy.txt", text)

    for name, row in PAPER_TABLE1.items():
        m = rows[name]
        assert m["invocations"] == row.invocations, name
        assert m["ipm"] > m["profiler"], name                  # the sign
        rel = (m["ipm"] - m["profiler"]) / m["profiler"]
        assert rel < 0.05, name                                # small
    # the trend: short kernels (scan) > long kernels (eigenvalues)
    rel = lambda n: (rows[n]["ipm"] - rows[n]["profiler"]) / rows[n]["profiler"]
    assert rel("scan") > rel("eigenvalues")
    assert rel("MonteCarlo") > rel("BlackScholes")
