"""Ablations: per-feature monitoring cost, hash-table capacity, and
thunking vs direct CUBLAS.

* **feature cost** — IPM's monitoring features (basic timing, kernel
  timing, host-idle separation) enabled cumulatively on the square
  workload: what each mechanism adds (§III's design is that kernel
  timing and host-idle are the expensive extras).
* **hash capacity** — IPM's table is statically sized (Fig. 1); an
  undersized table degrades into collisions/overflow but never loses
  data in this implementation.
* **thunking vs direct** — §IV-D: thunking wrappers are convenient but
  fully blocking; direct wrappers allow overlapping the transfer of
  the next operand with compute.
"""

import pytest

from repro.analysis import format_table
from repro.apps.square import SquareConfig, square_app
from repro.cluster import run_job
from repro.core import EventSignature, IpmConfig, PerfHashTable
from repro.cuda import Kernel, cudaMemcpyKind
from repro.cuda.memory import HostRef

from conftest import emit, once

K = cudaMemcpyKind


def repeated_square(env):
    return square_app(env, SquareConfig(n=20_000, repeat=1000))


FEATURE_LEVELS = [
    ("off", None),
    ("basic timing", IpmConfig(kernel_timing=False, host_idle=False)),
    ("+ kernel timing", IpmConfig(kernel_timing=True, host_idle=False)),
    ("+ host idle", IpmConfig(kernel_timing=True, host_idle=True)),
]


def _feature_costs():
    out = []
    for label, cfg in FEATURE_LEVELS:
        res = run_job(repeated_square, 1, seed=8, ipm_config=cfg)
        overhead = 0.0
        if res.report is not None:
            pass
        out.append((label, res.wallclock))
    return out


@pytest.mark.benchmark(group="ablation")
def test_feature_cost(benchmark):
    rows = once(benchmark, _feature_costs)
    base = rows[0][1]
    table = [
        [label, wall, f"{100 * (wall - base) / base:+.4f}"]
        for label, wall in rows
    ]
    text = format_table(
        ["monitoring level", "wallclock[s]", "vs unmonitored[%]"],
        table, floatfmt=".6f",
        title="Ablation — cumulative cost of IPM's monitoring features",
    )
    emit("ablation_feature_cost.txt", text)
    walls = [w for _l, w in rows]
    assert walls[1] >= walls[0]          # monitoring is never free
    assert walls[3] >= walls[1]
    assert (walls[3] - walls[0]) / walls[0] < 0.01  # …but always < 1 %


@pytest.mark.benchmark(group="ablation")
def test_hash_capacity(benchmark):
    def run():
        out = []
        for capacity in (64, 512, 8192):
            table = PerfHashTable(capacity=capacity)
            for i in range(3000):
                table.update(
                    EventSignature("MPI_Send", nbytes=(i % 500) * 64), 1e-6
                )
            out.append((capacity, len(table), table.collisions, table.overflowed))
        return out

    rows = once(benchmark, run)
    text = format_table(
        ["capacity", "entries", "collisions", "overflowed"],
        rows,
        title="Ablation — performance-data hash table sizing "
              "(500 distinct signatures)",
    )
    emit("ablation_hash_capacity.txt", text)
    by_cap = {r[0]: r for r in rows}
    assert by_cap[64][1] == 500          # nothing lost even undersized
    assert by_cap[64][3] > 0             # but it overflowed
    assert by_cap[8192][3] == 0
    assert by_cap[8192][2] <= by_cap[512][2] + 500


def thunking_workload(env):
    """Repeated dgemms through the blocking thunking path."""
    env.cublas.cublasInit()
    env.mpi.MPI_Barrier()
    t0 = env.sim.now
    for _ in range(12):
        env.thunking.dgemm(2048, 2048, 128)
    return env.sim.now - t0


def direct_workload(env):
    """The same dgemms with app-managed memory: one upload, reused
    device operands, async readback — the overlap the direct wrappers
    permit (§IV-D)."""
    cb = env.cublas
    rt = env.rt
    cb.cublasInit()
    _, st = rt.cudaStreamCreate()
    cb.cublasSetKernelStream(st)
    st_a = cb.cublasAlloc(2048 * 128, 8)[1]
    st_b = cb.cublasAlloc(128 * 2048, 8)[1]
    st_c = cb.cublasAlloc(2048 * 2048, 8)[1]
    env.mpi.MPI_Barrier()
    t0 = env.sim.now
    cb.cublasSetMatrix(2048, 128, 8, None, st_a)
    cb.cublasSetMatrix(128, 2048, 8, None, st_b)
    for _ in range(12):
        cb.cublasDgemm("N", "N", 2048, 2048, 128)
        rt.cudaMemcpyAsync(HostRef(2048 * 2048 * 8), st_c, 2048 * 2048 * 8,
                           K.cudaMemcpyDeviceToHost, st)
    rt.cudaStreamSynchronize(st)
    elapsed = env.sim.now - t0
    for ptr in (st_a, st_b, st_c):
        cb.cublasFree(ptr)
    return elapsed


@pytest.mark.benchmark(group="ablation")
def test_thunking_vs_direct(benchmark):
    def run():
        thunk = run_job(thunking_workload, 1, seed=9)
        direct = run_job(direct_workload, 1, seed=9)
        return thunk.results[0], direct.results[0]

    thunk_t, direct_t = once(benchmark, run)
    text = format_table(
        ["CUBLAS access path", "12 dgemms [s]"],
        [["thunking wrappers (blocking)", thunk_t],
         ["direct wrappers (overlap)", direct_t]],
        floatfmt=".4f",
        title="Ablation — thunking vs direct CUBLAS wrappers (§IV-D)",
    )
    emit("ablation_thunking.txt", text)
    # the paper's expectation: direct wrappers enable substantial overlap
    assert direct_t < 0.6 * thunk_t
