"""Wrapper-stack overhead microbenchmark (paper §V's headline claim).

The paper's selling point is that IPM is cheap enough to leave on in
production: per-event overheads in the microsecond range.  The other
benchmarks measure *simulated* dilatation; this one measures the real
wall-clock cost of our reproduction's interposition hot path — how many
monitored events per second the wrapper stack itself can push through,
versus the same wrappers with ``ipm.active = False`` (the bypass a real
preloaded-but-disabled IPM pays).

Two call shapes are driven in a 50/50 mix, matching the two wrapper
flavours that exist in the wild:

* a **plain** call (no hooks) — e.g. ``cudaConfigureCall``;
* a **refined** call whose signature carries a direction suffix and a
  byte count cycling over four sizes — e.g. ``cudaMemcpy(D2H)``.

A third configuration re-runs the monitored pass with the streaming
telemetry subsystem enabled (per-event counter folding plus a sampler
tick every ``_TICK_EVERY`` loop iterations into a memory sink), so the
recorded JSON quantifies what leaving telemetry on costs per event.

Besides throughput, a separate sampling pass times individual wrapped
calls with ``perf_counter_ns`` and reports the p50/p99 per-event
latency (timer overhead included — the numbers are upper bounds).

Results are written to ``BENCH_overhead.json`` at the repository root
(schema documented in EXPERIMENTS.md §Overhead) so future PRs have a
perf trajectory to compare against.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_overhead.py [--events N]

``--gate`` compares a fresh run against the committed
``BENCH_overhead.json`` and exits non-zero when monitored throughput
regressed by more than ``--gate-tolerance`` (default 20 %) — the CI
bench-regression job runs exactly that.

Or via pytest with the other benchmarks (``pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict

from repro.core import Ipm, IpmConfig, table_backend
from repro.core.wrapper_gen import WrapperHooks, generate_wrappers
from repro.simt import Simulator

#: monitored events/sec measured at the commit *before* the fast-path
#: optimisation (signature interning + memoized hashing + slot hints),
#: on the same harness: best of three runs.  Kept as the fixed
#: reference point for the speedup the optimisation PR claims.
PRE_OPT_EVENTS_PER_SEC = 306_000.0

SCHEMA = "ipm-repro/bench-overhead/v3"

#: byte sizes the refined call cycles through (4 distinct signatures).
_SIZES = (1024, 4096, 65536, 1048576)

#: loop iterations between synthetic sampler ticks in the telemetry
#: pass (the simulator clock is frozen here, so the benchmark advances
#: a virtual 10 ms per tick by hand).
_TICK_EVERY = 4096


class _NullApi:
    """A do-nothing host API: the measurement is pure wrapper cost."""

    def plain_call(self, x):
        return 0

    def sized_call(self, dst, src, count, kind):
        return 0


def _make_monitor(active: bool):
    sim = Simulator()
    ipm = Ipm(sim, config=IpmConfig(host_idle=False), blocking_calls=set())
    hooks = {
        "sized_call": WrapperHooks(refine=lambda a, k, r: ("(D2H)", a[2]))
    }
    proxy = generate_wrappers(
        ipm, _NullApi(), ["plain_call", "sized_call"], domain="CUDA",
        hooks=hooks, pass_kwargs=False,
    )
    ipm.active = active
    return ipm, proxy


def _make_telemetry_monitor():
    """The monitored stack plus an enabled telemetry hub (memory sink)."""
    from repro.telemetry import TelemetryConfig, TelemetryHub

    sim = Simulator()
    tcfg = TelemetryConfig(enabled=True, sinks=("memory",))
    ipm = Ipm(
        sim,
        config=IpmConfig(host_idle=False, telemetry=tcfg),
        blocking_calls=set(),
    )
    hooks = {
        "sized_call": WrapperHooks(refine=lambda a, k, r: ("(D2H)", a[2]))
    }
    proxy = generate_wrappers(
        ipm, _NullApi(), ["plain_call", "sized_call"], domain="CUDA",
        hooks=hooks, pass_kwargs=False,
    )
    hub = TelemetryHub(sim, tcfg)
    hub.register_rank(0, ipm)
    return ipm, proxy, hub


def _drive(proxy, n: int) -> float:
    """Issue ``2*n`` wrapped calls; returns events/sec (wall clock)."""
    plain = proxy.plain_call
    sized = proxy.sized_call
    sizes = _SIZES
    t0 = time.perf_counter()
    for i in range(n):
        plain(i)
        sized(0, 0, sizes[i & 3], 2)
    elapsed = time.perf_counter() - t0
    return 2 * n / elapsed


def _drive_telemetry(proxy, hub, n: int) -> float:
    """The monitored loop with periodic sampler ticks interleaved.

    Ticks advance a synthetic virtual clock (one interval per tick)
    because nothing runs the simulator here; a closing sample keeps
    even tiny smoke-test passes from measuring zero ticks.
    """
    plain = proxy.plain_call
    sized = proxy.sized_call
    sizes = _SIZES
    dt = hub.config.interval
    mask = _TICK_EVERY - 1
    t0 = time.perf_counter()
    for i in range(n):
        plain(i)
        sized(0, 0, sizes[i & 3], 2)
        if (i & mask) == mask:
            hub.sample_now(dt * (hub.ticks + 1))
    hub.sample_now(dt * (hub.ticks + 1))
    elapsed = time.perf_counter() - t0
    return 2 * n / elapsed


def _sample_latencies(proxy, samples: int):
    """Per-event latency distribution: (p50_us, p99_us, n_samples).

    Times individual wrapped calls with ``perf_counter_ns`` in the same
    50/50 plain/refined mix as the throughput loop.  Timer read cost is
    part of each sample, so treat the percentiles as upper bounds.
    """
    pc = time.perf_counter_ns
    plain = proxy.plain_call
    sized = proxy.sized_call
    sizes = _SIZES
    lat = [0] * samples
    for i in range(samples):
        if i & 1:
            t0 = pc()
            sized(0, 0, sizes[i & 3], 2)
            t1 = pc()
        else:
            t0 = pc()
            plain(i)
            t1 = pc()
        lat[i] = t1 - t0
    lat.sort()
    def pct(p: float) -> float:
        return lat[min(samples - 1, int(p * samples))] / 1000.0
    return pct(0.50), pct(0.99), samples


def run_overhead_bench(events: int = 300_000, warmup: int = 2_000) -> Dict:
    """Measure monitored vs inactive throughput; returns the result dict.

    ``events`` is the total number of monitored events per measured
    pass (two wrapped calls per loop iteration).
    """
    if events <= 0:
        raise ValueError(f"events must be positive: {events}")
    iterations = max(1, events // 2)
    ipm_on, proxy_on = _make_monitor(active=True)
    _drive(proxy_on, warmup)
    monitored = _drive(proxy_on, iterations)
    p50, p99, lat_samples = _sample_latencies(
        proxy_on, max(1000, min(events, 100_000))
    )
    _ipm_off, proxy_off = _make_monitor(active=False)
    _drive(proxy_off, warmup)
    inactive = _drive(proxy_off, iterations)
    _ipm_tel, proxy_tel, hub = _make_telemetry_monitor()
    _drive_telemetry(proxy_tel, hub, warmup)
    ticks_before = hub.ticks
    telemetry = _drive_telemetry(proxy_tel, hub, iterations)
    telemetry_ticks = hub.ticks - ticks_before
    hub.finish()
    return {
        "schema": SCHEMA,
        "events": 2 * iterations,
        "monitored_events_per_sec": round(monitored, 1),
        "inactive_events_per_sec": round(inactive, 1),
        "overhead_us_per_event": round(
            (1.0 / monitored - 1.0 / inactive) * 1e6, 4
        ),
        "latency_p50_us": round(p50, 4),
        "latency_p99_us": round(p99, 4),
        "latency_samples": lat_samples,
        "slab_backend": table_backend(),
        "telemetry_events_per_sec": round(telemetry, 1),
        "telemetry_overhead_us_per_event": round(
            (1.0 / telemetry - 1.0 / inactive) * 1e6, 4
        ),
        "telemetry_ticks": telemetry_ticks,
        "prechange_monitored_events_per_sec": PRE_OPT_EVENTS_PER_SEC,
        "speedup_vs_prechange": round(monitored / PRE_OPT_EVENTS_PER_SEC, 2),
        "distinct_signatures": len(ipm_on.table),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def default_output_path() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_overhead.json",
    )


def write_result(result: Dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_result(result: Dict) -> str:
    lines = [
        "Overhead — wall-clock wrapper-stack throughput",
        f"events measured        : {result['events']}",
        f"monitored  [events/s]  : {result['monitored_events_per_sec']:12.0f}",
        f"inactive   [events/s]  : {result['inactive_events_per_sec']:12.0f}",
        f"overhead per event [us]: {result['overhead_us_per_event']:12.4f}",
        f"latency p50/p99 [us]   : {result['latency_p50_us']:12.4f}"
        f" / {result['latency_p99_us']:.4f}"
        f"  ({result['latency_samples']} samples)",
        f"table backend          : {result['slab_backend']:>12}",
        f"telemetry  [events/s]  : {result['telemetry_events_per_sec']:12.0f}"
        f"  ({result['telemetry_ticks']} sampler ticks)",
        f"telemetry overhead [us]: "
        f"{result['telemetry_overhead_us_per_event']:12.4f}",
        f"pre-opt    [events/s]  : "
        f"{result['prechange_monitored_events_per_sec']:12.0f}",
        f"speedup vs pre-opt     : {result['speedup_vs_prechange']:11.2f}x",
    ]
    return "\n".join(lines)


def gate_against(result: Dict, committed_path: str, tolerance: float):
    """Compare ``result`` to the committed reference.

    Returns ``(ok, floor, reference)``; ``ok`` is True when monitored
    throughput is within ``tolerance`` of the committed number (or no
    reference exists yet — first run on a branch must not fail).
    """
    if not os.path.exists(committed_path):
        return True, 0.0, None
    with open(committed_path, encoding="utf-8") as fh:
        committed = json.load(fh)
    reference = committed.get("monitored_events_per_sec")
    if not reference:
        return True, 0.0, None
    floor = reference * (1.0 - tolerance)
    return result["monitored_events_per_sec"] >= floor, floor, reference


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--events", type=int, default=300_000,
                    help="monitored events per measured pass")
    ap.add_argument("--out", default=default_output_path(),
                    help="output JSON path")
    ap.add_argument("--gate", action="store_true",
                    help="compare against the committed BENCH_overhead.json "
                         "and exit 2 on a throughput regression; the "
                         "committed file is left untouched")
    ap.add_argument("--gate-tolerance", type=float, default=0.20,
                    help="allowed fractional drop before --gate fails")
    args = ap.parse_args(argv)
    if args.events <= 0:
        ap.error(f"--events must be positive (got {args.events})")
    if not 0.0 <= args.gate_tolerance < 1.0:
        ap.error(f"--gate-tolerance must be in [0, 1) "
                 f"(got {args.gate_tolerance})")
    result = run_overhead_bench(events=args.events)
    print(format_result(result))
    if args.gate:
        committed = default_output_path()
        ok, floor, reference = gate_against(
            result, committed, args.gate_tolerance
        )
        if reference is None:
            print("[gate] no committed reference — pass")
            return 0
        measured = result["monitored_events_per_sec"]
        verdict = "pass" if ok else "REGRESSION"
        print(f"[gate] {verdict}: measured {measured:.0f} ev/s vs "
              f"committed {reference:.0f} (floor {floor:.0f}, "
              f"tolerance {args.gate_tolerance:.0%})")
        return 0 if ok else 2
    path = write_result(result, args.out)
    print(f"[saved to {path}]")
    return 0


def test_overhead_throughput(benchmark):
    """pytest-benchmark entry point alongside the paper benchmarks."""
    from conftest import emit, once

    result = once(benchmark, run_overhead_bench)
    emit("bench_overhead.txt", format_result(result))
    write_result(result, default_output_path())
    assert result["monitored_events_per_sec"] > 0
    assert (
        result["monitored_events_per_sec"]
        >= 2.0 * result["prechange_monitored_events_per_sec"]
    )


if __name__ == "__main__":
    sys.exit(main())
