"""Fleet-aggregator benchmark: concurrent ingest and live rollups.

The fleet aggregator's contract is that one process absorbs telemetry
from a whole sweep *while it runs*: hundreds of jobs holding sockets
open, samples folding into bounded rollup rings, and the query API
answering over HTTP throughout.  This benchmark measures that pipeline
at the acceptance scale:

* **synthetic ingest** — ``JOBS`` concurrent :class:`repro.FleetSink`
  publishers (one open socket each) stream ``TICKS`` samples apiece
  from ``PUBLISHERS`` threads; measured: samples/sec into the store,
  jobs/sec through the start->end lifecycle, and the ingest lag
  distribution (wall-clock from the publisher's ``hts`` stamp to the
  rollup fold).
* **live sweep** — a real ``SweepRunner(fleet=...)`` run of
  telemetry-enabled specs streaming into the same aggregator, with
  the ``/jobs`` and ``/metrics`` endpoints queried while it drains.
* **durable replay** — the synthetic workload again, teed into a
  :class:`repro.fleet.HistoryLog` (``fsync="never"``), then replayed
  into a fresh store the way ``fleet serve --data-dir`` restarts;
  measured: ``replay_records_per_sec`` against the live-ingest
  record rate, plus the on-disk footprint before/after retention
  compaction.
* **chaos recovery** — a durable publisher behind a
  :class:`repro.fleet.ChaosProxy` is partitioned mid-stream
  (disconnect -> spool), then healed (reconnect -> drain); measured:
  spool write throughput during the outage, ``recovery_seconds``
  from heal to full convergence, drain throughput, and
  ``records_lost`` — whose acceptance floor is exactly 0.

Results are written to ``BENCH_fleet.json`` at the repository root
(schema documented in EXPERIMENTS.md §Fleet).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--jobs N]

or via pytest with the other benchmarks (``pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
import time
import urllib.request
from typing import Dict, List

from repro import IpmConfig, JobSpec, SweepRunner, TelemetryConfig
from repro.fleet import (
    ChaosPlan,
    ChaosProxy,
    FleetAggregator,
    FleetSink,
    FleetStore,
    HistoryLog,
    ResilientClient,
)
from repro.fleet.rollup import DEFAULT_RETENTION_TIERS
from repro.telemetry.series import SamplePoint

SCHEMA = "ipm-repro/bench-fleet/v3"

#: concurrent synthetic publishers — the acceptance floor is 200.
JOBS = 200

#: samples each synthetic job publishes.
TICKS = 10

#: publisher threads the synthetic jobs are sharded across.
PUBLISHERS = 8

#: telemetry-enabled specs for the live sweep phase.
SWEEP_JOBS = 6

#: records published into the spool during the chaos outage.
CHAOS_RECORDS = 2000


def _point(t: float, name: str, value: float, **labels) -> SamplePoint:
    return SamplePoint(
        t, name, tuple(sorted((k, str(v)) for k, v in labels.items())), value
    )


def _wait(cond, timeout: float = 120.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def _publish(sinks: List[FleetSink], ticks: int) -> None:
    for sink in sinks:
        sink.open({"ntasks": 1})
    for tick in range(ticks):
        t = tick * 0.05
        for i, sink in enumerate(sinks):
            sink.emit(t, [
                _point(t, "gpu_busy_fraction", 0.5, gpu=0),
                _point(t, "node_gpu_busy_fraction", 0.5,
                       node=f"dirac{i % 16:02d}"),
            ])
    for sink in sinks:
        sink.set_job_outcome("ok")
        sink.close()


def _synthetic_phase(jobs: int, ticks: int, publishers: int) -> Dict:
    with FleetAggregator() as agg:
        sinks = [
            FleetSink(agg.ingest_address, job=f"bench-{i:04d}")
            for i in range(jobs)
        ]
        shards = [sinks[i::publishers] for i in range(publishers)]
        threads = [
            threading.Thread(target=_publish, args=(shard, ticks))
            for shard in shards if shard
        ]
        store = agg.store
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        landed = _wait(lambda: store.samples >= jobs * ticks)
        ingest_s = time.perf_counter() - t0
        finished = _wait(
            lambda: store.registry.counts()["finished"] >= jobs
        )
        lifecycle_s = time.perf_counter() - t0
        lag = store.lag
        return {
            "jobs": jobs,
            "ticks_per_job": ticks,
            "publisher_threads": publishers,
            "samples": store.samples,
            "points": store.points,
            "all_samples_landed": bool(landed),
            "all_jobs_finished": bool(finished),
            "parse_errors": store.parse_errors,
            "dropped_records": store.dropped,
            "ingest_seconds": round(ingest_s, 3),
            "samples_per_sec": round(store.samples / ingest_s, 1),
            "jobs_per_sec": round(jobs / lifecycle_s, 1),
            "rollup_lag_avg_seconds": round(lag.avg, 6) if lag.count else None,
            "rollup_lag_max_seconds": round(lag.max, 6) if lag.count else None,
        }


def _sweep_phase(jobs: int) -> Dict:
    specs = [
        JobSpec(
            app="square", ntasks=2, seed=500 + i,
            ipm=IpmConfig(telemetry=TelemetryConfig(
                enabled=True, sinks=("memory",),
            )),
        )
        for i in range(jobs)
    ]
    with FleetAggregator() as agg:
        t0 = time.perf_counter()
        with SweepRunner(mode="serial", fleet=agg.ingest_address) as runner:
            report = runner.run(specs)
        store = agg.store
        finished = _wait(
            lambda: store.registry.counts()["finished"] >= jobs
        )
        sweep_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with urllib.request.urlopen(agg.http_url + "/jobs",
                                    timeout=10.0) as resp:
            payload = json.loads(resp.read())
        jobs_query_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        with urllib.request.urlopen(agg.http_url + "/metrics",
                                    timeout=10.0) as resp:
            metrics = resp.read().decode("utf-8")
        metrics_query_s = time.perf_counter() - t0
        return {
            "jobs": jobs,
            "all_ok": all(r.status == "ok" for r in report.results),
            "all_jobs_finished": bool(finished),
            "streamed_samples": store.samples,
            "sweep_seconds": round(sweep_s, 3),
            "jobs_per_sec": round(jobs / sweep_s, 2),
            "jobs_query_seconds": round(jobs_query_s, 4),
            "metrics_query_seconds": round(metrics_query_s, 4),
            "metrics_openmetrics_terminated": metrics.endswith("# EOF\n"),
            "queried_finished": payload["counts"]["finished"],
        }


def _replay_phase(jobs: int, ticks: int, publishers: int) -> Dict:
    data_dir = tempfile.mkdtemp(prefix="bench-fleet-history-")
    try:
        # live ingest, teed into the history log the way
        # `fleet serve --data-dir` runs (fsync off to measure the
        # pipeline, not the disk).
        with FleetAggregator(
            data_dir=data_dir, fsync="never", compact_interval=0.0,
        ) as agg:
            sinks = [
                FleetSink(agg.ingest_address, job=f"bench-{i:04d}")
                for i in range(jobs)
            ]
            shards = [sinks[i::publishers] for i in range(publishers)]
            threads = [
                threading.Thread(target=_publish, args=(shard, ticks))
                for shard in shards if shard
            ]
            store = agg.store
            t0 = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            _wait(lambda: store.registry.counts()["finished"] >= jobs)
            live_s = time.perf_counter() - t0
            live_records = store.records
            live_samples = store.samples

        # restart path: a fresh store rebuilt from the log alone.
        replay_store = FleetStore(tiers=DEFAULT_RETENTION_TIERS)
        log = HistoryLog(data_dir, fsync="never")
        t0 = time.perf_counter()
        replayed = replay_store.attach_history(log)
        replay_s = time.perf_counter() - t0
        bytes_before = log.total_bytes()
        log.rotate()
        compact_stats = log.compact(retain=0)
        bytes_after = log.total_bytes()
        log.close()
        return {
            "jobs": jobs,
            "live_records": live_records,
            "live_records_per_sec": round(live_records / live_s, 1),
            "replayed_records": replayed,
            "replay_seconds": round(replay_s, 3),
            "replay_records_per_sec": round(replayed / replay_s, 1),
            "replay_samples_match": replay_store.samples == live_samples,
            "replay_torn_lines": log.torn_lines,
            "compacted_segments": compact_stats["segments_compacted"],
            "disk_bytes_before_compaction": bytes_before,
            "disk_bytes_after_compaction": bytes_after,
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def _chaos_phase(records: int = CHAOS_RECORDS) -> Dict:
    """Disconnect -> spool -> reconnect -> drain, with a stopwatch."""

    def sample(i: int) -> Dict:
        return {
            "kind": "sample", "job": "bench-chaos", "t": i * 0.01,
            "points": [{"name": "gpu_busy_fraction", "labels": {},
                        "value": 0.5}],
        }

    spool_dir = tempfile.mkdtemp(prefix="bench-fleet-spool-")
    warmup = 10
    total = warmup + records
    try:
        with FleetAggregator() as agg:
            proxy = ChaosProxy(agg.ingest_address, ChaosPlan(seed=42))
            proxy.start()
            client = ResilientClient(
                proxy.address_str,
                label="bench chaos",
                pub="bench-chaos",
                spool_dir=spool_dir,
                retry_base=0.02,
                retry_max_delay=0.25,
            )
            store = agg.store
            try:
                # healthy warm-up: prove the pipe works end to end
                for i in range(warmup):
                    client.send(sample(i))
                assert client.flush(30.0)

                # the outage: partition, keep publishing into the spool
                proxy.pause()
                t0 = time.perf_counter()
                for i in range(warmup, total):
                    client.send(sample(i))
                # the queue drains to disk in the background; the
                # write rate is only honest once it all lands
                _wait(lambda: client.spool_depth >= records)
                spool_s = time.perf_counter() - t0
                spooled = client.spool_depth

                # the heal: reconnect, drain, converge
                proxy.resume()
                t0 = time.perf_counter()
                drained = client.flush(120.0)
                converged = _wait(lambda: store.samples >= total)
                recovery_s = time.perf_counter() - t0
                stats = client.stats()
            finally:
                client.close(flush_timeout=0.0)
                proxy.stop()
            totals = store.publishers_summary()["totals"]
            return {
                "records": records,
                "spooled_during_outage": spooled,
                "spool_write_per_sec": round(records / spool_s, 1),
                "drained": bool(drained),
                "converged": bool(converged),
                "recovery_seconds": round(recovery_s, 3),
                "drain_records_per_sec": round(spooled / recovery_s, 1),
                "reconnects": stats["reconnects"],
                "records_lost": total - totals["received"],
                "duplicates_deduped": totals["duplicates"],
                "gap_records": totals["gap_records"],
            }
    finally:
        shutil.rmtree(spool_dir, ignore_errors=True)


def run_fleet_bench(jobs: int = JOBS) -> Dict:
    """Measure synthetic ingest + live sweep streaming; returns the dict."""
    if jobs < 2:
        raise ValueError(f"jobs must be >= 2: {jobs}")
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpu_count = os.cpu_count() or 1
    return {
        "schema": SCHEMA,
        "cpu_count": cpu_count,
        "synthetic": _synthetic_phase(jobs, TICKS, PUBLISHERS),
        "sweep": _sweep_phase(SWEEP_JOBS),
        "replay": _replay_phase(jobs, TICKS, PUBLISHERS),
        "chaos": _chaos_phase(CHAOS_RECORDS),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def default_output_path() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_fleet.json",
    )


def write_result(result: Dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_result(result: Dict) -> str:
    syn, swp = result["synthetic"], result["sweep"]
    rep, cha = result["replay"], result["chaos"]
    lag = syn["rollup_lag_avg_seconds"]
    lag_max = syn["rollup_lag_max_seconds"]
    return "\n".join([
        "Fleet aggregator — concurrent ingest + live sweep streaming",
        f"synthetic jobs      : {syn['jobs']:10d}"
        f"   ({syn['publisher_threads']} publisher threads, "
        f"{syn['ticks_per_job']} ticks each)",
        f"samples ingested    : {syn['samples']:10d}"
        f"   ({syn['samples_per_sec']:.0f}/s)",
        f"job lifecycles      : {syn['jobs_per_sec']:10.1f}/s",
        f"rollup lag [s]      : "
        f"{'n/a' if lag is None else f'avg {lag:.6f}, max {lag_max:.6f}'}",
        f"parse errors/drops  : {syn['parse_errors']:10d}"
        f" / {syn['dropped_records']}",
        f"live sweep          : {swp['jobs']:10d} specs"
        f"   ({swp['jobs_per_sec']:.2f}/s, "
        f"{swp['streamed_samples']} samples streamed)",
        f"query /jobs [s]     : {swp['jobs_query_seconds']:10.4f}",
        f"query /metrics [s]  : {swp['metrics_query_seconds']:10.4f}",
        f"history replay      : {rep['replayed_records']:10d} records"
        f"   ({rep['replay_records_per_sec']:.0f}/s vs "
        f"{rep['live_records_per_sec']:.0f}/s live)",
        f"history footprint   : {rep['disk_bytes_before_compaction']:10d}"
        f" -> {rep['disk_bytes_after_compaction']} bytes"
        f" ({rep['compacted_segments']} segments compacted)",
        f"chaos spool write   : {cha['spool_write_per_sec']:10.0f}/s"
        f"   ({cha['spooled_during_outage']} records through the outage)",
        f"chaos recovery [s]  : {cha['recovery_seconds']:10.3f}"
        f"   ({cha['drain_records_per_sec']:.0f}/s drained, "
        f"{cha['reconnects']} reconnects)",
        f"chaos records lost  : {cha['records_lost']:10d}"
        f"   ({cha['duplicates_deduped']} replays deduped, "
        f"{cha['gap_records']} gaps)",
    ])


def check_result(result: Dict) -> None:
    """The acceptance floors (shared by pytest and the CLI)."""
    syn, swp = result["synthetic"], result["sweep"]
    assert syn["all_samples_landed"]
    assert syn["all_jobs_finished"]
    assert syn["parse_errors"] == 0
    assert syn["dropped_records"] == 0
    assert syn["samples"] == syn["jobs"] * syn["ticks_per_job"]
    assert syn["rollup_lag_avg_seconds"] is not None
    assert swp["all_ok"]
    assert swp["all_jobs_finished"]
    assert swp["streamed_samples"] > 0
    assert swp["queried_finished"] == swp["jobs"]
    assert swp["metrics_openmetrics_terminated"]
    rep = result["replay"]
    assert rep["replayed_records"] == rep["live_records"]
    assert rep["replay_samples_match"]
    assert rep["replay_torn_lines"] == 0
    # restart must never be slower than ingesting the same records
    # live over sockets.
    assert rep["replay_records_per_sec"] >= rep["live_records_per_sec"]
    assert (
        rep["disk_bytes_after_compaction"]
        < rep["disk_bytes_before_compaction"]
    )
    cha = result["chaos"]
    assert cha["drained"] and cha["converged"]
    assert cha["reconnects"] >= 1
    assert cha["gap_records"] == 0
    # the resilience contract: an outage costs time, never records
    assert cha["records_lost"] == 0
    assert cha["drain_records_per_sec"] > 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=JOBS,
                    help=f"concurrent synthetic jobs (default: {JOBS})")
    ap.add_argument("--out", default=default_output_path(),
                    help="output JSON path")
    args = ap.parse_args(argv)
    if args.jobs < 2:
        ap.error(f"--jobs must be >= 2 (got {args.jobs})")
    result = run_fleet_bench(jobs=args.jobs)
    print(format_result(result))
    path = write_result(result, args.out)
    print(f"[saved to {path}]")
    check_result(result)
    return 0


def test_fleet_ingest_throughput(benchmark):
    """pytest-benchmark entry point alongside the paper benchmarks."""
    from conftest import emit, once

    result = once(benchmark, run_fleet_bench)
    emit("bench_fleet.txt", format_result(result))
    write_result(result, default_output_path())
    check_result(result)


if __name__ == "__main__":
    sys.exit(main())
