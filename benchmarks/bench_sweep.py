"""Sweep-runner benchmark: parallel fan-out and warm-cache replay.

The figure scripts re-run the same deterministic simulations over and
over; :class:`repro.SweepRunner` attacks that cost twice — independent
specs fan out onto worker processes, and every result is content-
addressed on disk so the next invocation replays it.  This benchmark
quantifies both levers on a small ensemble of monitored tiny-HPL jobs:

* **serial vs parallel** — the same specs through ``mode="serial"``
  and a 4-worker warm-worker pool, asserting byte-identical reports;
* **cold vs warm cache** — a fresh cache directory filled once, then
  replayed, asserting hits and byte-identity again.

Results are written to ``BENCH_sweep.json`` at the repository root
(schema documented in EXPERIMENTS.md §Sweeps).  The parallel speedup
floor (>= 2x at 4 workers) is asserted only on hosts with more than
one usable core: the simulation is pure CPU work, so a single-core
container physically cannot go faster by forking — the recorded
``cpu_count`` tells readers which regime a given JSON measured.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--jobs N]

or via pytest with the other benchmarks (``pytest benchmarks/``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Dict, List

from repro import IpmConfig, JobSpec, ResultCache, SweepRunner

SCHEMA = "ipm-repro/bench-sweep/v2"

#: parallel speedup floor asserted on multi-core hosts.
PARALLEL_FLOOR = 2.0

#: worker processes for the parallel pass (the acceptance point).
WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _specs(jobs: int) -> List[JobSpec]:
    base = JobSpec(
        app="hpl",
        ntasks=4,
        app_params={"preset": "tiny"},
        command="./xhpl.cuda",
        ipm=IpmConfig(),
    )
    return [base.replace(seed=100 + i) for i in range(jobs)]


def _pickles(report) -> List[bytes]:
    return [r.report_pickle for r in report]


def run_sweep_bench(jobs: int = 8) -> Dict:
    """Measure serial/parallel/cached sweep timings; returns the dict."""
    if jobs <= 1:
        raise ValueError(f"jobs must be > 1: {jobs}")
    specs = _specs(jobs)

    t0 = time.perf_counter()
    serial = SweepRunner(mode="serial").run(specs)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = SweepRunner(workers=WORKERS, mode="auto").run(specs)
    parallel_s = time.perf_counter() - t0
    identical = _pickles(par) == _pickles(serial)

    cache_dir = tempfile.mkdtemp(prefix="bench_sweep_cache_")
    try:
        cached_runner = SweepRunner(
            mode="serial", cache=ResultCache(cache_dir)
        )
        t0 = time.perf_counter()
        cold = cached_runner.run(specs)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = cached_runner.run(specs)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    cached_identical = (
        _pickles(warm) == _pickles(cold) == _pickles(serial)
    )

    cpu_count = _usable_cores()
    floor_checked = cpu_count >= 2
    return {
        "schema": SCHEMA,
        "jobs": jobs,
        "cpu_count": cpu_count,
        "workers": WORKERS,
        "parallel_floor": PARALLEL_FLOOR,
        "parallel_floor_checked": floor_checked,
        "parallel_floor_skip_reason": None if floor_checked else (
            f"host exposes {cpu_count} usable core(s): forked workers "
            "time-share one CPU, so a parallel speedup floor is "
            "physically unmeasurable here"
        ),
        "parallel_mode_used": par.mode,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "parallel_byte_identical": identical,
        "cache_cold_seconds": round(cold_s, 3),
        "cache_warm_seconds": round(warm_s, 3),
        "cache_speedup": round(cold_s / warm_s, 2),
        "cache_hits_warm": warm.cache_hits,
        "cache_byte_identical": cached_identical,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def default_output_path() -> str:
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_sweep.json",
    )


def write_result(result: Dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_result(result: Dict) -> str:
    lines = [
        "Sweep — serial vs parallel vs content-addressed cache",
        f"jobs (tiny HPL x4)  : {result['jobs']:10d}"
        f"   on {result['cpu_count']} usable core(s)",
        f"serial       [s]    : {result['serial_seconds']:10.3f}",
        f"parallel x{result['workers']}  [s]   : "
        f"{result['parallel_seconds']:10.3f}"
        f"   ({result['parallel_speedup']:.2f}x, "
        f"mode={result['parallel_mode_used']}, "
        f"byte-identical={result['parallel_byte_identical']})",
        f"cache cold   [s]    : {result['cache_cold_seconds']:10.3f}",
        f"cache warm   [s]    : {result['cache_warm_seconds']:10.3f}"
        f"   ({result['cache_speedup']:.2f}x, "
        f"{result['cache_hits_warm']} hits, "
        f"byte-identical={result['cache_byte_identical']})",
    ]
    if not result["parallel_floor_checked"]:
        lines.append(
            f"parallel floor      :    SKIPPED "
            f"({result['parallel_floor_skip_reason']})"
        )
    return "\n".join(lines)


def check_result(result: Dict) -> None:
    """The acceptance floors (shared by pytest and the CLI).

    The parallel speedup floor only applies where it is physically
    measurable; on single-core hosts the skip is recorded in the JSON
    (``parallel_floor_checked`` / ``parallel_floor_skip_reason``) and
    logged to stderr rather than silently waved through.
    """
    assert result["parallel_byte_identical"]
    assert result["cache_byte_identical"]
    assert result["cache_hits_warm"] == result["jobs"]
    assert result["cache_speedup"] >= 10.0
    if result["parallel_floor_checked"]:
        assert result["parallel_speedup"] >= result["parallel_floor"]
    else:
        print(
            f"[bench_sweep] skipping >= {result['parallel_floor']}x "
            f"parallel floor: {result['parallel_floor_skip_reason']}",
            file=sys.stderr,
        )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--jobs", type=int, default=8,
                    help="ensemble size (default: 8)")
    ap.add_argument("--out", default=default_output_path(),
                    help="output JSON path")
    args = ap.parse_args(argv)
    if args.jobs <= 1:
        ap.error(f"--jobs must be > 1 (got {args.jobs})")
    result = run_sweep_bench(jobs=args.jobs)
    print(format_result(result))
    path = write_result(result, args.out)
    print(f"[saved to {path}]")
    check_result(result)
    return 0


def test_sweep_throughput(benchmark):
    """pytest-benchmark entry point alongside the paper benchmarks."""
    from conftest import emit, once

    result = once(benchmark, run_sweep_bench)
    emit("bench_sweep.txt", format_result(result))
    write_result(result, default_output_path())
    check_result(result)


if __name__ == "__main__":
    sys.exit(main())
