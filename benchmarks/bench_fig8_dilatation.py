"""Fig. 8: application-level runtime dilatation of HPL under IPM.

The paper's ensemble study: repeated CUDA-HPL runs on 16 nodes with
and without IPM (all monitoring features on: MPI + CUDA events, kernel
timing, host-idle identification).  Paper numbers: 126.40 s → 126.67 s
mean, a 0.21 % dilatation "evidently well below the natural runtime
variation between runs".

The reproduced *claims* are (a) the ensembles overlap — mean
dilatation < run-to-run σ — and (b) dilatation is well under 1 %.
The absolute 0.21 % corresponds to the real code's call volume
(~100k+ monitored calls/rank); the scaled model issues ~2k calls/rank,
so its absolute dilatation is smaller (see EXPERIMENTS.md and the
call-volume ablation in bench_ablation_ktt_policy.py).

Ensemble size defaults to 40+40 (paper: 120+120); set
``REPRO_FIG8_RUNS=120`` for the full ensemble.
"""

import os

import pytest

from repro import IpmConfig, JobSpec, NoiseConfig
from repro.analysis import ascii_histogram, compare_ensembles

from conftest import emit, once, sweep_runner

RUNS = int(os.environ.get("REPRO_FIG8_RUNS", "40"))


def _ensemble():
    """The 2×RUNS ensemble as one sweep (paper_16rank == HplConfig())."""
    base = JobSpec(app="hpl", ntasks=16, command="xhpl.cuda",
                   noise=NoiseConfig())
    without_specs = [base.replace(seed=1000 + i) for i in range(RUNS)]
    with_specs = [base.replace(seed=2000 + i, ipm=IpmConfig())
                  for i in range(RUNS)]
    sweep = sweep_runner().run(without_specs + with_specs)
    wallclocks = sweep.wallclocks()
    return wallclocks[RUNS:], wallclocks[:RUNS]


@pytest.mark.benchmark(group="fig8")
def test_fig8_runtime_dilatation(benchmark):
    with_ipm, without_ipm = once(benchmark, _ensemble)
    cmp = compare_ensembles(with_ipm, without_ipm)
    s_with, s_without, dilatation = cmp.with_ipm, cmp.without_ipm, cmp.dilatation

    lo = min(min(with_ipm), min(without_ipm))
    hi = max(max(with_ipm), max(without_ipm))
    text = "\n".join([
        f"Fig. 8 — HPL on 16 nodes, {RUNS}+{RUNS} runs "
        "(paper: 120+120, mean 126.40 -> 126.67 s, +0.21%)",
        "",
        ascii_histogram(without_ipm, bins=16, lo=lo, hi=hi,
                        label=f"without IPM: mean={s_without.mean:.2f}s "
                              f"std={s_without.std:.3f}s"),
        "",
        ascii_histogram(with_ipm, bins=16, lo=lo, hi=hi,
                        label=f"with IPM:    mean={s_with.mean:.2f}s "
                              f"std={s_with.std:.3f}s"),
        "",
        f"mean dilatation: {100 * dilatation:+.3f}%  "
        f"(paper: +0.21%); run-to-run sigma: "
        f"{100 * s_without.std / s_without.mean:.3f}% of mean",
    ])
    emit("fig8_dilatation.txt", text)

    benchmark.extra_info["dilatation_pct"] = 100 * dilatation
    benchmark.extra_info["noise_sigma_pct"] = 100 * s_without.std / s_without.mean
    # claim (a): dilatation below the natural variability
    assert abs(s_with.mean - s_without.mean) < s_without.std
    # claim (b): well below 1 %
    assert dilatation < 0.01
    # ensembles genuinely overlap
    assert s_with.vmin < s_without.vmax
    # both means near the paper's operating point
    assert s_without.mean == pytest.approx(126.4, rel=0.02)
