"""Figs. 4/5/6: the three banner levels for the square example.

Regenerates the three profiling banners the paper uses to introduce
its monitoring mechanisms and checks their defining features:

* Fig. 4 — ``cudaMalloc`` (context creation) dominates; the blocking
  D2H transfer silently absorbs the kernel time;
* Fig. 5 — ``@CUDA_EXEC_STRM00`` appears, ≈1.15 s;
* Fig. 6 — ``@CUDA_HOST_IDLE`` ≈ ``@CUDA_EXEC`` exposes the D2H wait,
  and the transfer itself collapses to ~0.
"""

import pytest

from repro import IpmConfig, JobSpec
from repro.core import banner_serial

from conftest import emit, once, sweep_runner


def _run(config: IpmConfig):
    spec = JobSpec(
        app="square", ntasks=1, command="./cuda.ipm", ipm=config, seed=15,
    )
    return sweep_runner().run([spec])[0]


@pytest.mark.benchmark(group="fig4-6")
def test_fig4_host_timing_banner(benchmark):
    res = once(benchmark, lambda: _run(IpmConfig(kernel_timing=False,
                                                 host_idle=False)))
    task = res.report.tasks[0]
    text = banner_serial(task)
    emit("fig4_banner.txt", text)
    by = task.table.by_name()
    assert by["cudaMalloc"].total > 1.0                      # context init
    assert by["cudaMemcpy(D2H)"].total > 1.0                 # hidden wait
    assert by["cudaMemcpy(H2D)"].total < 0.01
    assert not any(n.startswith("@") for n in by)


@pytest.mark.benchmark(group="fig4-6")
def test_fig5_kernel_timing_banner(benchmark):
    res = once(benchmark, lambda: _run(IpmConfig(host_idle=False)))
    task = res.report.tasks[0]
    emit("fig5_banner.txt", banner_serial(task))
    by = task.table.by_name()
    assert by["@CUDA_EXEC_STRM00"].total == pytest.approx(1.15, rel=0.02)
    benchmark.extra_info["gpu_exec_s"] = by["@CUDA_EXEC_STRM00"].total


@pytest.mark.benchmark(group="fig4-6")
def test_fig6_host_idle_banner(benchmark):
    res = once(benchmark, lambda: _run(IpmConfig()))
    task = res.report.tasks[0]
    emit("fig6_banner.txt", banner_serial(task))
    by = task.table.by_name()
    exec_t = by["@CUDA_EXEC_STRM00"].total
    idle_t = by["@CUDA_HOST_IDLE"].total
    assert by["@CUDA_HOST_IDLE"].count == 1
    assert idle_t == pytest.approx(exec_t, rel=0.02)   # Fig. 6: 1.15 vs 1.15
    assert by["cudaMemcpy(D2H)"].total < 0.01          # wait separated out
    benchmark.extra_info["host_idle_s"] = idle_t
