"""Cluster model and job-runner tests."""

import numpy as np
import pytest

from repro.cluster import Cluster, make_dirac, run_job
from repro.core import IpmConfig
from repro.cuda import Kernel, cudaMemcpyKind
from repro.simt import NoiseConfig, Simulator

K = cudaMemcpyKind


class TestClusterModel:
    def test_dirac_defaults(self):
        sim = Simulator()
        dirac = make_dirac(sim)
        assert dirac.n_nodes == 48
        assert dirac.nodes[0].hostname == "dirac01"
        assert dirac.nodes[0].spec.cores == 8
        assert len(dirac.nodes[0].devices) == 1
        assert dirac.nodes[0].devices[0].spec.name == "Tesla C2050"
        assert dirac.nodes[0].devices[0].spec.memory_bytes == 3 * 1024**3

    def test_rank_mapping(self):
        sim = Simulator()
        c = Cluster(sim, 4)
        assert c.node_of_rank(0, 2).index == 0
        assert c.node_of_rank(1, 2).index == 0
        assert c.node_of_rank(7, 2).index == 3
        with pytest.raises(ValueError):
            c.node_of_rank(8, 2)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            Cluster(Simulator(), 0)


def tiny_app(env):
    """A little MPI+CUDA program used by the runner tests."""
    err, ptr = env.rt.cudaMalloc(8000)
    host = np.zeros(1000)
    env.rt.cudaMemcpy(ptr, host, 8000, K.cudaMemcpyHostToDevice)
    env.rt.launch(Kernel("work", nominal_duration=0.01), 100, 64, args=(ptr,))
    env.rt.cudaMemcpy(host, ptr, 8000, K.cudaMemcpyDeviceToHost)
    env.hostcompute(0.05)
    total = env.mpi.MPI_Allreduce(env.rank)
    env.rt.cudaFree(ptr)
    return total


class TestRunJob:
    def test_unmonitored_run(self):
        res = run_job(tiny_app, 4, command="tiny")
        assert res.report is None
        assert res.results == [6, 6, 6, 6]
        assert res.wallclock > 0.06

    def test_monitored_run_produces_report(self):
        res = run_job(tiny_app, 4, command="tiny", ipm_config=IpmConfig())
        job = res.report
        assert job is not None and job.ntasks == 4
        by = job.merged_by_name()
        assert by["cudaLaunch"].count == 4
        assert by["MPI_Allreduce"].count == 4
        assert "@CUDA_EXEC_STRM00" in by
        assert by["@CUDA_EXEC_STRM00"].count == 4
        assert job.domains["MPI_Allreduce"] == "MPI"
        assert job.domains["cudaLaunch"] == "CUDA"

    def test_each_rank_has_own_host(self):
        res = run_job(tiny_app, 4, command="tiny", ipm_config=IpmConfig())
        hosts = [t.hostname for t in res.report.tasks]
        assert hosts == ["dirac01", "dirac02", "dirac03", "dirac04"]

    def test_shared_gpu_mapping(self):
        res = run_job(tiny_app, 4, command="tiny", ranks_per_node=4,
                      ipm_config=IpmConfig())
        hosts = {t.hostname for t in res.report.tasks}
        assert hosts == {"dirac01"}
        assert res.cluster.n_nodes == 1

    def test_shared_gpu_contention_slows_kernels(self):
        """Issue 5 of the paper: ranks sharing one GPU contend."""

        def gpu_heavy(env):
            env.rt.cudaMalloc(64)
            env.mpi.MPI_Barrier()
            t0 = env.sim.now
            env.rt.launch(Kernel("big", nominal_duration=0.1), 1024, 128)
            env.rt.cudaThreadSynchronize()
            return env.sim.now - t0

        exclusive = run_job(gpu_heavy, 4, ranks_per_node=1, command="x")
        shared = run_job(gpu_heavy, 4, ranks_per_node=4, command="x")
        assert max(shared.results) > 3 * max(exclusive.results)

    def test_noise_changes_wallclock_between_seeds(self):
        def compute(env):
            env.hostcompute(1.0)

        a = run_job(compute, 2, seed=1, noise=NoiseConfig())
        b = run_job(compute, 2, seed=2, noise=NoiseConfig())
        assert a.wallclock != b.wallclock
        assert a.wallclock > 1.0 and b.wallclock > 1.0

    def test_determinism_same_seed(self):
        a = run_job(tiny_app, 4, seed=7, noise=NoiseConfig())
        b = run_job(tiny_app, 4, seed=7, noise=NoiseConfig())
        assert a.wallclock == b.wallclock
        assert a.events_executed == b.events_executed

    def test_monitored_dilatation_small(self):
        """The Fig. 8 premise at job level: IPM costs well under 1%."""

        def app(env):
            err, ptr = env.rt.cudaMalloc(8000)
            host = np.zeros(1000)
            for _ in range(50):
                env.rt.launch(Kernel("k", nominal_duration=0.002), 32, 32)
                env.rt.cudaMemcpy(host, ptr, 8000, K.cudaMemcpyDeviceToHost)
            env.mpi.MPI_Barrier()

        plain = run_job(app, 2, seed=3)
        monitored = run_job(app, 2, seed=3, ipm_config=IpmConfig())
        dilatation = (monitored.wallclock - plain.wallclock) / plain.wallclock
        assert 0.0 < dilatation < 0.01

    def test_task_wallclocks_use_rank_exit_times(self):
        def staggered(env):
            env.sim.sleep(float(env.rank))

        res = run_job(staggered, 3, ipm_config=IpmConfig())
        walls = [t.wallclock for t in res.report.tasks]
        assert walls[0] < walls[1] < walls[2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_job(tiny_app, 0)
        with pytest.raises(ValueError):
            run_job(tiny_app, 2, ranks_per_node=0)
