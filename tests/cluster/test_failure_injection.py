"""Failure injection: the stack must fail loudly and precisely."""

import numpy as np
import pytest

from repro.cluster import run_job
from repro.core import IpmConfig
from repro.cuda import Kernel, cudaError_t, cudaMemcpyKind
from repro.libs import CublasStatus
from repro.simt import ProcessCrashed, SimulationError

E = cudaError_t
K = cudaMemcpyKind


class TestRankCrashes:
    def test_crash_in_one_rank_surfaces_with_cause(self):
        def app(env):
            if env.rank == 2:
                raise RuntimeError("segfault stand-in")
            env.mpi.MPI_Barrier()

        with pytest.raises(ProcessCrashed) as ei:
            run_job(app, 4)
        assert "rank2" in str(ei.value)
        assert isinstance(ei.value.__cause__, RuntimeError)

    def test_crash_mid_collective_is_a_deadlock_or_crash(self):
        """A rank dying before entering a collective leaves the others
        stuck — the simulator reports it instead of hanging."""

        def app(env):
            if env.rank == 0:
                raise ValueError("died early")
            env.mpi.MPI_Allreduce(1)

        with pytest.raises((ProcessCrashed, SimulationError)):
            run_job(app, 3)

    def test_missing_recv_reports_deadlock_with_names(self):
        def app(env):
            if env.rank == 0:
                env.mpi.MPI_Recv(source=1)  # nobody sends

        with pytest.raises(SimulationError, match="deadlock.*rank0"):
            run_job(app, 2)

    def test_monitored_crash_still_propagates(self):
        def app(env):
            env.rt.cudaMalloc(64)
            raise KeyError("boom")

        with pytest.raises(ProcessCrashed):
            run_job(app, 2, ipm_config=IpmConfig())


class TestResourceFailures:
    def test_device_oom_returns_code_not_crash(self):
        def app(env):
            err, ptr = env.rt.cudaMalloc(1 << 40)
            assert err == E.cudaErrorMemoryAllocation and ptr is None
            # the error is observable through cudaGetLastError
            assert env.rt.cudaGetLastError() == E.cudaErrorMemoryAllocation
            # and the runtime still works afterwards
            err, ptr = env.rt.cudaMalloc(4096)
            assert err == E.cudaSuccess
            env.rt.cudaFree(ptr)

        run_job(app, 1)

    def test_oom_under_monitoring_records_the_failed_call(self):
        def app(env):
            env.rt.cudaMalloc(1 << 40)

        res = run_job(app, 1, ipm_config=IpmConfig())
        by = res.report.merged_by_name()
        # failures are still events — recorded under the error-tagged
        # name, plus the @CUDA_ERROR accounting region
        assert by["cudaMalloc(!cudaErrorMemoryAllocation)"].count == 1
        assert by["@CUDA_ERROR"].count == 1

    def test_cublas_alloc_failure_cleanup(self):
        def app(env):
            cb = env.cublas
            cb.cublasInit()
            st, ptr = cb.cublasAlloc(1 << 40, 1)
            assert st == CublasStatus.CUBLAS_STATUS_ALLOC_FAILED
            # thunking reports failure without leaking what it allocated
            st = env.thunking.zgemm(20_000, 20_000, 20_000)
            assert st == CublasStatus.CUBLAS_STATUS_ALLOC_FAILED

        res = run_job(app, 1)
        assert res.cluster.nodes[0].devices[0].memory.bytes_in_use == 0

    def test_double_free_is_an_error_code(self):
        def app(env):
            err, ptr = env.rt.cudaMalloc(64)
            assert env.rt.cudaFree(ptr) == E.cudaSuccess
            assert env.rt.cudaFree(ptr) == E.cudaErrorInvalidDevicePointer

        run_job(app, 1)

    def test_kernel_launch_failure_monitored(self):
        def app(env):
            env.rt.cudaConfigureCall(1, 1)
            assert env.rt.cudaLaunch("garbage") == E.cudaErrorLaunchFailure

        res = run_job(app, 1, ipm_config=IpmConfig())
        by = res.report.merged_by_name()
        assert by["cudaLaunch(!cudaErrorLaunchFailure)"].count == 1
        # no phantom kernel timing was recorded
        assert not any(n.startswith("@CUDA_EXEC") for n in by)


class TestMonitoringRobustness:
    def test_ktt_exhaustion_is_counted_not_fatal(self):
        def app(env):
            rt = env.rt
            rt.cudaMalloc(64)
            streams = [rt.cudaStreamCreate()[1] for _ in range(4)]
            for i in range(30):  # > capacity, all pending, no D2H
                rt.launch(Kernel("slow", nominal_duration=30.0, occupancy=0.01),
                          1, 1, stream=streams[i % 4])
            rt.cudaThreadSynchronize()

        res = run_job(app, 1, ipm_config=IpmConfig(ktt_capacity=8))
        # IPM stayed alive; kernels beyond the table were dropped,
        # everything else was drained at finalize
        by = res.report.merged_by_name()
        timed = sum(s.count for n, s in by.items() if n.startswith("@CUDA_EXEC"))
        assert 8 <= timed < 30

    def test_report_survives_empty_rank(self):
        """A rank that makes no monitored calls still produces a task."""

        def app(env):
            if env.rank == 0:
                env.rt.cudaMalloc(64)

        res = run_job(app, 2, ipm_config=IpmConfig())
        assert res.report.ntasks == 2
        assert len(res.report.tasks[1].table) == 0

    def test_hash_overflow_under_monitoring(self):
        def app(env):
            host = np.zeros(16, dtype=np.uint8)
            err, ptr = env.rt.cudaMalloc(4096)
            for i in range(64):  # 64 distinct byte sizes > capacity 16
                env.rt.cudaMemcpy(host[: i % 16 + 1], ptr, i % 16 + 1,
                                  K.cudaMemcpyDeviceToHost)

        res = run_job(app, 1, ipm_config=IpmConfig(hash_capacity=16,
                                                   host_idle=False))
        task = res.report.tasks[0]
        assert task.table.overflowed > 0
        total = sum(s.count for _n, s in task.table.items())
        assert total >= 64  # nothing lost
