"""Shared fixtures for the CUDA platform tests."""

import numpy as np
import pytest

from repro.cuda import Device, GpuTimingModel, Runtime
from repro.simt import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def device(sim):
    return Device(sim, device_id=0, rng=np.random.default_rng(42))


@pytest.fixture()
def quiet_timing():
    """A timing model without stochastic jitter, for exact assertions."""
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_sigma = 0.0
    t.context_init_mean = 0.0
    return t


@pytest.fixture()
def quiet_device(sim, quiet_timing):
    return Device(sim, device_id=0, timing=quiet_timing, rng=np.random.default_rng(1))


@pytest.fixture()
def rt(sim, quiet_device):
    """Runtime on a jitter-free, zero-context-init device."""
    return Runtime(sim, [quiet_device], process_name="test")


def run_in_proc(sim, fn):
    """Run ``fn`` inside a simulated process; return its result."""
    proc = sim.spawn(fn, name="body")
    sim.run()
    return proc.result
