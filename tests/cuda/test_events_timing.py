"""CUDA event API tests — the device-timing mechanism of §III-B,
including the systematic IPM-vs-profiler difference behind Table I."""

import numpy as np
import pytest

from repro.cuda import CudaProfiler, Device, Kernel, Runtime, cudaError_t
from repro.simt import Simulator

from tests.cuda.conftest import run_in_proc

E = cudaError_t


class TestEventAPI:
    def test_elapsed_time_brackets_kernel(self, sim, rt, quiet_timing):
        def body():
            rt.cudaMalloc(64)
            _, start = rt.cudaEventCreate()
            _, stop = rt.cudaEventCreate()
            rt.cudaEventRecord(start)
            rt.launch(Kernel("k", nominal_duration=1.0), 1, 1)
            rt.cudaEventRecord(stop)
            rt.cudaEventSynchronize(stop)
            return rt.cudaEventElapsedTime(start, stop)

        err, ms = run_in_proc(sim, body)
        assert err == E.cudaSuccess
        # bracketed time = launch gap + kernel + event latency > kernel
        assert ms > 1000.0
        assert ms < 1000.0 + 1.0  # gap is microseconds, not milliseconds

    def test_query_before_and_after(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, ev = rt.cudaEventCreate()
            unrecorded = rt.cudaEventQuery(ev)
            rt.launch(Kernel("k", nominal_duration=1.0), 1, 1)
            rt.cudaEventRecord(ev)
            pending = rt.cudaEventQuery(ev)
            rt.cudaEventSynchronize(ev)
            done = rt.cudaEventQuery(ev)
            return unrecorded, pending, done

        unrecorded, pending, done = run_in_proc(sim, body)
        assert unrecorded == E.cudaSuccess  # CUDA: unrecorded queries succeed
        assert pending == E.cudaErrorNotReady
        assert done == E.cudaSuccess

    def test_elapsed_on_pending_events_not_ready(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, a = rt.cudaEventCreate()
            _, b = rt.cudaEventCreate()
            rt.launch(Kernel("k", nominal_duration=5.0), 1, 1)
            rt.cudaEventRecord(a)
            rt.cudaEventRecord(b)
            return rt.cudaEventElapsedTime(a, b)[0]

        assert run_in_proc(sim, body) == E.cudaErrorNotReady

    def test_elapsed_on_unrecorded_invalid(self, sim, rt):
        def body():
            _, a = rt.cudaEventCreate()
            _, b = rt.cudaEventCreate()
            return rt.cudaEventElapsedTime(a, b)[0]

        assert run_in_proc(sim, body) == E.cudaErrorInvalidResourceHandle

    def test_destroyed_event_rejected(self, sim, rt):
        def body():
            _, ev = rt.cudaEventCreate()
            rt.cudaEventDestroy(ev)
            return rt.cudaEventRecord(ev)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidResourceHandle

    def test_rerecord_resets(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, ev = rt.cudaEventCreate()
            rt.cudaEventRecord(ev)
            rt.cudaEventSynchronize(ev)
            first_ts = ev.timestamp
            rt.launch(Kernel("k", nominal_duration=1.0), 1, 1)
            rt.cudaEventRecord(ev)
            pending = rt.cudaEventQuery(ev)
            rt.cudaEventSynchronize(ev)
            return first_ts, pending, ev.timestamp

        first_ts, pending, second_ts = run_in_proc(sim, body)
        assert pending == E.cudaErrorNotReady
        assert second_ts > first_ts + 1.0


class TestProfilerEmulation:
    def test_profiler_records_exact_kernel_time(self, sim, rt):
        prof = CudaProfiler()

        def body():
            rt.cudaMalloc(64)
            prof.attach(rt.context)
            rt.launch(Kernel("mykernel", nominal_duration=0.25), 1, 1)
            rt.cudaThreadSynchronize()

        run_in_proc(sim, body)
        assert prof.kernel_invocations("mykernel") == 1
        assert prof.kernel_time_total("mykernel") == pytest.approx(0.25, rel=1e-9)

    def test_profiler_counts_memcpys(self, sim, rt):
        prof = CudaProfiler()

        def body():
            _, ptr = rt.cudaMalloc(1024)
            prof.attach(rt.context)
            host = np.zeros(1024, dtype=np.uint8)
            rt.cudaMemcpy(ptr, host, 1024, rt_kind_h2d())
            rt.cudaMemcpy(host, ptr, 1024, rt_kind_d2h())

        from repro.cuda import cudaMemcpyKind

        def rt_kind_h2d():
            return cudaMemcpyKind.cudaMemcpyHostToDevice

        def rt_kind_d2h():
            return cudaMemcpyKind.cudaMemcpyDeviceToHost

        run_in_proc(sim, body)
        methods = [r.method for r in prof.records]
        assert "memcpyHtoD" in methods and "memcpyDtoH" in methods
        assert prof.kernel_invocations() == 0

    def test_event_timing_always_exceeds_profiler(self, sim):
        """The Table I sign: IPM (event brackets) > profiler (kernel only),
        with larger relative error for shorter kernels — emerges from the
        launch gap, not from hard-coding."""
        dev = Device(sim, rng=np.random.default_rng(7))
        rt = Runtime(sim, [dev])
        prof = CudaProfiler()
        results = {}

        def time_kernel(dur):
            _, start = rt.cudaEventCreate()
            _, stop = rt.cudaEventCreate()
            rt.cudaEventRecord(start)
            rt.launch(Kernel("k", nominal_duration=dur), 1, 1)
            rt.cudaEventRecord(stop)
            rt.cudaEventSynchronize(stop)
            _, ms = rt.cudaEventElapsedTime(start, stop)
            return ms * 1e-3

        def body():
            rt.cudaMalloc(64)
            prof.attach(rt.context)
            for dur in (0.001, 0.01, 0.1, 1.0):
                n_before = prof.kernel_time_total()
                ipm_time = time_kernel(dur)
                prof_time = prof.kernel_time_total() - n_before
                results[dur] = (ipm_time, prof_time)

        run_in_proc(sim, body)
        rel_errs = []
        for dur, (ipm_time, prof_time) in results.items():
            assert ipm_time > prof_time, f"dur={dur}"
            rel_errs.append((ipm_time - prof_time) / prof_time)
        # shorter kernels → larger relative difference
        assert rel_errs == sorted(rel_errs, reverse=True)

    def test_log_format(self, sim, rt, tmp_path):
        prof = CudaProfiler()

        def body():
            rt.cudaMalloc(64)
            prof.attach(rt.context)
            rt.launch(Kernel("square", nominal_duration=0.1), 1, 1)
            rt.cudaThreadSynchronize()

        run_in_proc(sim, body)
        path = tmp_path / "cuda_profile_0.log"
        prof.write_log(str(path))
        text = path.read_text()
        assert "# CUDA_PROFILE_LOG_VERSION 2.0" in text
        assert "method=[ square ]" in text
        assert "gputime=[" in text

    def test_double_attach_rejected(self, sim, rt):
        prof = CudaProfiler()

        def body():
            rt.cudaMalloc(64)
            prof.attach(rt.context)
            with pytest.raises(RuntimeError):
                prof.attach(rt.context)

        run_in_proc(sim, body)
