"""Tests for the secondary runtime calls (2-D ops, pinned alloc,
attributes, limits) and multi-GPU nodes."""

import numpy as np
import pytest

from repro.cluster import run_job
from repro.cluster.node import NodeSpec
from repro.cluster.cluster import Cluster
from repro.cuda import Kernel, cudaError_t, cudaMemcpyKind
from repro.simt import Simulator

from tests.cuda.conftest import run_in_proc

E = cudaError_t
K = cudaMemcpyKind


class TestPitchedMemory:
    def test_pitch_is_aligned_and_covers_width(self, sim, rt):
        def body():
            return rt.cudaMallocPitch(1000, 4)

        err, ptr, pitch = run_in_proc(sim, body)
        assert err == E.cudaSuccess
        assert pitch >= 1000 and pitch % 512 == 0

    def test_bad_shape(self, sim, rt):
        def body():
            return rt.cudaMallocPitch(0, 4)[0], rt.cudaMallocPitch(4, -1)[0]

        assert run_in_proc(sim, body) == (E.cudaErrorInvalidValue,) * 2

    def test_memcpy2d_roundtrip(self, sim, rt):
        src = np.arange(256, dtype=np.uint8)
        dst = np.zeros_like(src)

        def body():
            err, ptr, pitch = rt.cudaMallocPitch(256, 1)
            rt.cudaMemcpy2D(ptr, pitch, src, 256, 256, 1,
                            K.cudaMemcpyHostToDevice)
            rt.cudaMemcpy2D(dst, 256, ptr, pitch, 256, 1,
                            K.cudaMemcpyDeviceToHost)

        run_in_proc(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_memcpy2d_pitch_validation(self, sim, rt):
        def body():
            err, ptr, pitch = rt.cudaMallocPitch(128, 2)
            return rt.cudaMemcpy2D(ptr, 64, None, 128, 128, 2)  # dpitch < width

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue

    def test_memset2d(self, sim, rt):
        def body():
            err, ptr, pitch = rt.cudaMallocPitch(64, 2)
            assert rt.cudaMemset2D(ptr, pitch, 0, 64, 2) == E.cudaSuccess
            assert rt.cudaMemset2D(ptr, 8, 0, 64, 2) == E.cudaErrorInvalidValue

        run_in_proc(sim, body)


class TestHostAllocAndInfo:
    def test_hostalloc_is_pinned(self, sim, rt):
        def body():
            err, buf = rt.cudaHostAlloc(4096)
            return err, buf.pinned

        assert run_in_proc(sim, body) == (E.cudaSuccess, True)

    def test_mem_get_info_tracks_allocations(self, sim, rt, quiet_device):
        def body():
            _, free0, total = rt.cudaMemGetInfo()
            rt.cudaMalloc(1 << 20)
            _, free1, _ = rt.cudaMemGetInfo()
            return free0, free1, total

        free0, free1, total = run_in_proc(sim, body)
        assert total == quiet_device.spec.memory_bytes
        assert free0 - free1 == 1 << 20

    def test_choose_device(self, sim, rt):
        def body():
            return rt.cudaChooseDevice()

        assert run_in_proc(sim, body) == (E.cudaSuccess, 0)

    def test_func_attributes(self, sim, rt):
        def body():
            k = Kernel("k", nominal_duration=1.0, occupancy=0.5)
            err, attrs = rt.cudaFuncGetAttributes(k)
            bad, _ = rt.cudaFuncGetAttributes("nope")
            return err, attrs, bad

        err, attrs, bad = run_in_proc(sim, body)
        assert err == E.cudaSuccess
        assert attrs["occupancy"] == 0.5
        assert attrs["maxThreadsPerBlock"] == 1024
        assert bad == E.cudaErrorInvalidResourceHandle

    def test_symbol_size(self, sim, rt):
        def body():
            rt.cudaMemcpyToSymbol("c_tbl", None, 4096)
            err, size = rt.cudaGetSymbolSize("c_tbl")
            missing, _ = rt.cudaGetSymbolSize("nope")
            return err, size, missing

        err, size, missing = run_in_proc(sim, body)
        assert err == E.cudaSuccess and size >= 4096
        assert missing == E.cudaErrorInvalidValue

    def test_thread_limits(self, sim, rt):
        def body():
            _, default = rt.cudaThreadGetLimit("cudaLimitStackSize")
            rt.cudaThreadSetLimit("cudaLimitStackSize", 8192)
            _, after = rt.cudaThreadGetLimit("cudaLimitStackSize")
            bad = rt.cudaThreadSetLimit("cudaLimitStackSize", -1)
            return default, after, bad

        default, after, bad = run_in_proc(sim, body)
        assert default == 1024 and after == 8192
        assert bad == E.cudaErrorInvalidValue


class TestMultiGpuNodes:
    def test_set_device_switches_contexts_and_memory(self):
        spec = NodeSpec(gpus=2)

        def app(env):
            rt = env.rt
            err, n = rt.cudaGetDeviceCount()
            assert n == 2
            _, p0 = rt.cudaMalloc(1 << 20)
            rt.cudaSetDevice(1)
            _, p1 = rt.cudaMalloc(2 << 20)
            assert p0.device_id != p1.device_id
            rt.cudaFree(p1)
            rt.cudaSetDevice(0)
            rt.cudaFree(p0)

        sim = Simulator()
        cluster = Cluster(sim, 1, node_spec=spec)
        run_job(app, 1, cluster=cluster)
        for dev in cluster.nodes[0].devices:
            assert dev.memory.bytes_in_use == 0

    def test_kernels_on_two_gpus_overlap(self):
        spec = NodeSpec(gpus=2)

        def app(env):
            rt = env.rt
            t0 = env.sim.now
            rt.cudaSetDevice(0)
            rt.launch(Kernel("a", nominal_duration=1.0), 1, 1)
            rt.cudaSetDevice(1)
            rt.launch(Kernel("b", nominal_duration=1.0), 1, 1)
            rt.cudaThreadSynchronize()   # syncs device 1 only
            rt.cudaSetDevice(0)
            rt.cudaThreadSynchronize()
            return env.sim.now - t0

        sim = Simulator()
        cluster = Cluster(sim, 1, node_spec=spec)
        res = run_job(app, 1, cluster=cluster)
        # both contexts pay init (serialized per-device locks are
        # distinct) and kernels overlap: well under 2×(init+kernel)
        assert res.results[0] < 2 * (1.29 * 1.3 + 1.0)
