"""Device memory allocator tests (unit + property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.errors import CudaError, cudaError_t
from repro.cuda.memory import DeviceMemory, DevicePtr, HostBuffer, HostRef


def mem(capacity=1 << 20):
    return DeviceMemory(device_id=0, capacity=capacity)


class TestMallocFree:
    def test_malloc_returns_aligned_ptr(self):
        m = mem()
        p = m.malloc(100)
        assert p.address % DeviceMemory.ALIGN == 0

    def test_distinct_allocations_do_not_overlap(self):
        m = mem()
        ptrs = [m.malloc(1000) for _ in range(10)]
        spans = sorted((p.address, p.address + 1024) for p in ptrs)
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            assert a1 <= b0

    def test_free_then_reuse(self):
        m = mem(capacity=4096)
        p = m.malloc(4096)
        with pytest.raises(CudaError):
            m.malloc(256)
        m.free(p)
        assert m.malloc(4096).address == p.address

    def test_oom_error_code(self):
        m = mem(capacity=1024)
        with pytest.raises(CudaError) as ei:
            m.malloc(2048)
        assert ei.value.code == cudaError_t.cudaErrorMemoryAllocation

    def test_double_free_rejected(self):
        m = mem()
        p = m.malloc(64)
        m.free(p)
        with pytest.raises(CudaError) as ei:
            m.free(p)
        assert ei.value.code == cudaError_t.cudaErrorInvalidDevicePointer

    def test_free_bogus_pointer_rejected(self):
        m = mem()
        with pytest.raises(CudaError):
            m.free(DevicePtr(0, 12345))

    def test_free_wrong_device_rejected(self):
        m = mem()
        with pytest.raises(CudaError):
            m.free(DevicePtr(1, 0))

    def test_zero_and_negative_malloc_rejected(self):
        m = mem()
        for bad in (0, -1):
            with pytest.raises(CudaError):
                m.malloc(bad)

    def test_accounting(self):
        m = mem()
        p1 = m.malloc(1000)
        p2 = m.malloc(2000)
        assert m.bytes_in_use == 1024 + 2048
        assert m.peak_bytes == m.bytes_in_use
        m.free(p1)
        assert m.bytes_in_use == 2048
        assert m.peak_bytes == 1024 + 2048
        m.free(p2)
        assert m.bytes_in_use == 0

    def test_coalescing_allows_big_realloc(self):
        m = mem(capacity=3 * 256)
        a = m.malloc(256)
        b = m.malloc(256)
        c = m.malloc(256)
        m.free(a)
        m.free(c)
        m.free(b)  # middle last: must coalesce both sides
        assert m.malloc(3 * 256) is not None


class TestDataAccess:
    def test_backed_write_read_roundtrip(self):
        m = mem()
        p = m.malloc(64, backed=True)
        m.write(p, b"hello")
        assert m.read(p, 5) == b"hello"

    def test_offset_pointer_access(self):
        m = mem()
        p = m.malloc(64, backed=True)
        m.write(p + 8, b"xy")
        assert m.read(p + 8, 2) == b"xy"
        assert m.read(p, 10)[8:10] == b"xy"

    def test_unbacked_read_returns_none(self):
        m = mem()
        p = m.malloc(64, backed=False)
        m.write(p, b"data")  # silently priced-only
        assert m.read(p, 4) is None

    def test_overrun_write_rejected(self):
        m = mem()
        p = m.malloc(16, backed=True)
        with pytest.raises(CudaError):
            m.write(p, b"x" * 300)

    def test_overrun_read_rejected(self):
        m = mem()
        p = m.malloc(16, backed=True)
        with pytest.raises(CudaError):
            m.read(p, 300)

    def test_find_inside_allocation(self):
        m = mem()
        p = m.malloc(100)
        assert m.find(p + 50).base == p.address

    def test_negative_ptr_offset_rejected(self):
        with pytest.raises(ValueError):
            DevicePtr(0, 0) + (-1)

    def test_leak_tracking_by_context(self):
        m = mem()
        m.malloc(64, context_id=7)
        m.malloc(64, context_id=8)
        assert len(m.leaked(7)) == 1
        assert len(m.leaked(9)) == 0


class TestHostBuffers:
    def test_hostbuffer_is_real_memory(self):
        hb = HostBuffer(16)
        hb.array[:] = 7
        assert hb.nbytes == 16 and hb.pinned

    def test_hostbuffer_bad_size(self):
        with pytest.raises(ValueError):
            HostBuffer(0)

    def test_hostref_is_synthetic(self):
        r = HostRef(1 << 30)
        assert r.nbytes == 1 << 30 and not r.pinned

    def test_hostref_negative_rejected(self):
        with pytest.raises(ValueError):
            HostRef(-1)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(min_value=1, max_value=8192)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=60,
    )
)
def test_allocator_invariants(ops):
    """Property: no overlap, exact accounting, capacity conserved."""
    m = mem(capacity=1 << 16)
    live = []
    for op, arg in ops:
        if op == "malloc":
            try:
                p = m.malloc(arg)
                live.append((p, DeviceMemory._round_up(arg)))
            except CudaError:
                pass
        elif live:
            p, _ = live.pop(arg % len(live))
            m.free(p)
    # accounting matches the live set
    assert m.bytes_in_use == sum(sz for _, sz in live)
    # no two live allocations overlap
    spans = sorted((p.address, p.address + sz) for p, sz in live)
    for (a0, a1), (b0, _) in zip(spans, spans[1:]):
        assert a1 <= b0
    # free list + live = capacity
    free_total = sum(sz for _, sz in m._free)
    assert free_total + m.bytes_in_use == m.capacity
