"""Semantics of the simulated CUDA runtime — the behaviours IPM's
monitoring techniques depend on (paper Sections III-A/B/C)."""

import numpy as np
import pytest

from repro.cuda import (
    Device,
    Kernel,
    Runtime,
    cudaError_t,
    cudaMemcpyKind,
)
from repro.simt import Simulator

from tests.cuda.conftest import run_in_proc

E = cudaError_t
K = cudaMemcpyKind


def kernel(name="k", dur=1.0, occupancy=1.0, semantic=None):
    return Kernel(name, nominal_duration=dur, occupancy=occupancy, semantic=semantic)


class TestContextInit:
    def test_first_call_pays_context_init(self, sim, quiet_timing):
        quiet_timing.context_init_mean = 1.5
        dev = Device(sim, timing=quiet_timing, rng=np.random.default_rng(0))
        rt = Runtime(sim, [dev])

        def body():
            t0 = sim.now
            rt.cudaMalloc(1024)
            first = sim.now - t0
            t0 = sim.now
            rt.cudaMalloc(1024)
            second = sim.now - t0
            return first, second

        first, second = run_in_proc(sim, body)
        assert first >= 1.5
        assert second < 0.001

    def test_two_processes_serialize_context_creation(self, sim, quiet_timing):
        quiet_timing.context_init_mean = 1.0
        dev = Device(sim, timing=quiet_timing, rng=np.random.default_rng(0))
        done_times = []

        def body(i):
            rt = Runtime(sim, [dev], process_name=f"p{i}")
            rt.cudaMalloc(64)
            done_times.append(sim.now)

        sim.spawn(body, 0)
        sim.spawn(body, 1)
        sim.run()
        assert done_times[0] >= 1.0
        assert done_times[1] >= 2.0  # driver lock serializes inits


class TestKernelLaunchAsync:
    def test_launch_returns_before_kernel_finishes(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            t0 = sim.now
            rt.launch(kernel(dur=5.0), 128, 64)
            return sim.now - t0

        host_time = run_in_proc(sim, body)
        assert host_time < 0.001  # launches are always asynchronous (§III)

    def test_launch_without_configure_fails(self, sim, rt):
        def body():
            return rt.cudaLaunch(kernel())

        assert run_in_proc(sim, body) == E.cudaErrorMissingConfiguration

    def test_setup_argument_without_configure_fails(self, sim, rt):
        def body():
            return rt.cudaSetupArgument(1)

        assert run_in_proc(sim, body) == E.cudaErrorMissingConfiguration

    def test_launch_non_kernel_fails(self, sim, rt):
        def body():
            rt.cudaConfigureCall(1, 1)
            return rt.cudaLaunch("not-a-kernel")

        assert run_in_proc(sim, body) == E.cudaErrorLaunchFailure

    def test_error_sticky_until_getlasterror(self, sim, rt):
        def body():
            rt.cudaLaunch(kernel())  # missing configuration
            first = rt.cudaPeekAtLastError()
            second = rt.cudaGetLastError()
            third = rt.cudaGetLastError()
            return first, second, third

        first, second, third = run_in_proc(sim, body)
        assert first == second == E.cudaErrorMissingConfiguration
        assert third == E.cudaSuccess


class TestImplicitHostBlocking:
    """The §III-C mechanism: sync memcpy waits for prior kernels."""

    def test_sync_d2h_blocks_until_kernel_done(self, sim, rt):
        def body():
            _, ptr = rt.cudaMalloc(800_000)
            host = np.zeros(100_000, dtype=np.float64)
            rt.launch(kernel(dur=1.0), 100_000, 1, args=(ptr,))
            t0 = sim.now
            rt.cudaMemcpy(host, ptr, 800_000, K.cudaMemcpyDeviceToHost)
            return sim.now - t0

        d2h_wall = run_in_proc(sim, body)
        assert d2h_wall > 1.0  # dominated by implicit wait for the kernel

    def test_streamsync_absorbs_the_wait(self, sim, rt):
        """After a streamSynchronize the same memcpy is cheap — the
        microbenchmark separation IPM relies on."""

        def body():
            _, ptr = rt.cudaMalloc(800_000)
            host = np.zeros(100_000, dtype=np.float64)
            rt.launch(kernel(dur=1.0), 100_000, 1, args=(ptr,))
            t0 = sim.now
            rt.cudaStreamSynchronize(None)
            wait = sim.now - t0
            t0 = sim.now
            rt.cudaMemcpy(host, ptr, 800_000, K.cudaMemcpyDeviceToHost)
            copy = sim.now - t0
            return wait, copy

        wait, copy = run_in_proc(sim, body)
        assert wait > 1.0
        assert copy < 0.01

    def test_memset_does_not_block_host(self, sim, rt):
        """cudaMemset must be the exception (§III-C)."""

        def body():
            _, ptr = rt.cudaMalloc(1024)
            rt.launch(kernel(dur=2.0), 1, 1)
            t0 = sim.now
            rt.cudaMemset(ptr, 0, 1024)
            return sim.now - t0

        assert run_in_proc(sim, body) < 0.001

    def test_async_memcpy_does_not_block_host(self, sim, rt):
        def body():
            _, ptr = rt.cudaMalloc(1024)
            _, hb = rt.cudaMallocHost(1024)
            _, st = rt.cudaStreamCreate()
            rt.launch(kernel(dur=2.0), 1, 1)
            t0 = sim.now
            rt.cudaMemcpyAsync(ptr, hb, 1024, K.cudaMemcpyHostToDevice, st)
            return sim.now - t0

        assert run_in_proc(sim, body) < 0.001


class TestStreamOrdering:
    def test_same_stream_kernels_serialize(self, sim, rt, quiet_device):
        def body():
            rt.cudaMalloc(64)
            t0 = sim.now
            rt.launch(kernel("a", dur=1.0), 1, 1)
            rt.launch(kernel("b", dur=1.0), 1, 1)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        assert run_in_proc(sim, body) >= 2.0

    def test_user_streams_overlap_when_occupancy_allows(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, s1 = rt.cudaStreamCreate()
            _, s2 = rt.cudaStreamCreate()
            t0 = sim.now
            rt.launch(kernel("a", dur=1.0, occupancy=0.4), 1, 1, stream=s1)
            rt.launch(kernel("b", dur=1.0, occupancy=0.4), 1, 1, stream=s2)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        assert run_in_proc(sim, body) < 1.5  # overlapped

    def test_full_occupancy_kernels_serialize_across_streams(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, s1 = rt.cudaStreamCreate()
            _, s2 = rt.cudaStreamCreate()
            t0 = sim.now
            rt.launch(kernel("a", dur=1.0, occupancy=1.0), 1, 1, stream=s1)
            rt.launch(kernel("b", dur=1.0, occupancy=1.0), 1, 1, stream=s2)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        assert run_in_proc(sim, body) >= 2.0

    def test_default_stream_fences_user_streams(self, sim, rt):
        """Legacy semantics: a default-stream op is a device-wide fence."""
        order = []

        def noted(name, dur):
            return Kernel(
                name,
                nominal_duration=dur,
                semantic=lambda mem, cfg, args: order.append(name),
            )

        def body():
            rt.cudaMalloc(64)
            _, s1 = rt.cudaStreamCreate()
            rt.launch(noted("user1", 1.0), 1, 1, stream=s1)
            rt.launch(noted("null", 0.1), 1, 1)           # default stream
            rt.launch(noted("user2", 0.1), 1, 1, stream=s1)
            rt.cudaThreadSynchronize()

        run_in_proc(sim, body)
        assert order == ["user1", "null", "user2"]

    def test_stream_query(self, sim, rt):
        def body():
            rt.cudaMalloc(64)
            _, st = rt.cudaStreamCreate()
            before = rt.cudaStreamQuery(st)
            rt.launch(kernel(dur=1.0), 1, 1, stream=st)
            during = rt.cudaStreamQuery(st)
            rt.cudaStreamSynchronize(st)
            after = rt.cudaStreamQuery(st)
            return before, during, after

        before, during, after = run_in_proc(sim, body)
        assert before == E.cudaSuccess
        assert during == E.cudaErrorNotReady
        assert after == E.cudaSuccess

    def test_concurrent_kernel_limit_16(self, sim, rt, quiet_device):
        def body():
            rt.cudaMalloc(64)
            streams = [rt.cudaStreamCreate()[1] for _ in range(20)]
            t0 = sim.now
            for st in streams:
                rt.launch(kernel("tiny", dur=1.0, occupancy=0.01), 1, 1, stream=st)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        wall = run_in_proc(sim, body)
        # 20 kernels of 1s, max 16 concurrent → two waves ≈ 2s.
        assert 2.0 <= wall < 2.1


class TestDataMovement:
    def test_roundtrip_h2d_d2h(self, sim, rt):
        src = np.arange(100, dtype=np.float64)
        dst = np.zeros_like(src)

        def body():
            _, ptr = rt.cudaMalloc(src.nbytes)
            rt.cudaMemcpy(ptr, src, src.nbytes, K.cudaMemcpyHostToDevice)
            rt.cudaMemcpy(dst, ptr, src.nbytes, K.cudaMemcpyDeviceToHost)

        run_in_proc(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_kernel_semantic_transforms_data(self, sim, rt):
        """End-to-end: the Fig. 3 pattern really squares the array."""
        src = np.arange(1, 9, dtype=np.float64)
        dst = np.zeros_like(src)

        def square_sem(mem, cfg, args):
            ptr, n = args
            data = np.frombuffer(mem.read(ptr, n * 8), dtype=np.float64)
            mem.write(ptr, (data * data).tobytes())

        def body():
            _, ptr = rt.cudaMalloc(src.nbytes)
            rt.cudaMemcpy(ptr, src, src.nbytes, K.cudaMemcpyHostToDevice)
            rt.launch(kernel("sq", dur=0.5, semantic=square_sem), 8, 1,
                      args=(ptr, 8))
            rt.cudaMemcpy(dst, ptr, src.nbytes, K.cudaMemcpyDeviceToHost)

        run_in_proc(sim, body)
        np.testing.assert_array_equal(dst, src * src)

    def test_d2d_copy(self, sim, rt):
        src = np.arange(10, dtype=np.int32)
        dst = np.zeros_like(src)

        def body():
            _, p1 = rt.cudaMalloc(src.nbytes)
            _, p2 = rt.cudaMalloc(src.nbytes)
            rt.cudaMemcpy(p1, src, src.nbytes, K.cudaMemcpyHostToDevice)
            rt.cudaMemcpy(p2, p1, src.nbytes, K.cudaMemcpyDeviceToDevice)
            rt.cudaMemcpy(dst, p2, src.nbytes, K.cudaMemcpyDeviceToHost)

        run_in_proc(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_memset_clears_backing(self, sim, rt):
        dst = np.full(16, 0xFF, dtype=np.uint8)

        def body():
            _, ptr = rt.cudaMalloc(16)
            rt.cudaMemcpy(ptr, dst, 16, K.cudaMemcpyHostToDevice)
            rt.cudaMemset(ptr, 0, 16)
            rt.cudaThreadSynchronize()
            rt.cudaMemcpy(dst, ptr, 16, K.cudaMemcpyDeviceToHost)

        run_in_proc(sim, body)
        assert (dst == 0).all()

    def test_symbol_roundtrip(self, sim, rt):
        src = np.arange(4, dtype=np.float32)
        dst = np.zeros_like(src)

        def body():
            rt.cudaMemcpyToSymbol("c_coeff", src, src.nbytes)
            rt.cudaMemcpyFromSymbol(dst, "c_coeff", src.nbytes)
            err, addr = rt.cudaGetSymbolAddress("c_coeff")
            assert err == E.cudaSuccess and addr is not None

        run_in_proc(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_memcpy_wrong_direction_fails(self, sim, rt):
        def body():
            _, ptr = rt.cudaMalloc(64)
            host = np.zeros(8)
            return rt.cudaMemcpy(host, host, 64, K.cudaMemcpyDeviceToHost)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidMemcpyDirection

    def test_pinned_transfers_faster_than_pageable(self, sim, rt, quiet_timing):
        nbytes = 64 * 1024 * 1024

        def body():
            _, ptr = rt.cudaMalloc(nbytes)
            pageable = np.zeros(nbytes, dtype=np.uint8)
            _, pinned = rt.cudaMallocHost(nbytes)
            t0 = sim.now
            rt.cudaMemcpy(ptr, pageable, nbytes, K.cudaMemcpyHostToDevice)
            t_pageable = sim.now - t0
            t0 = sim.now
            rt.cudaMemcpy(ptr, pinned, nbytes, K.cudaMemcpyHostToDevice)
            t_pinned = sim.now - t0
            return t_pageable, t_pinned

        t_pageable, t_pinned = run_in_proc(sim, body)
        assert t_pinned < t_pageable
        assert t_pageable / t_pinned == pytest.approx(
            1.0 / quiet_timing.pageable_fraction, rel=0.05
        )


class TestDeviceManagement:
    def test_get_device_count(self, sim, rt):
        def body():
            return rt.cudaGetDeviceCount()

        err, n = run_in_proc(sim, body)
        assert err == E.cudaSuccess and n == 1

    def test_set_bad_device(self, sim, rt):
        def body():
            return rt.cudaSetDevice(3)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue

    def test_properties(self, sim, rt):
        def body():
            return rt.cudaGetDeviceProperties()

        err, spec = run_in_proc(sim, body)
        assert err == E.cudaSuccess
        assert spec.name == "Tesla C2050"
        assert spec.max_concurrent_kernels == 16

    def test_versions(self, sim, rt):
        def body():
            return rt.cudaRuntimeGetVersion()[1], rt.cudaDriverGetVersion()[1]

        assert run_in_proc(sim, body) == (3010, 3010)

    def test_thread_exit_frees_leaks(self, sim, rt, quiet_device):
        def body():
            rt.cudaMalloc(1 << 20)
            rt.cudaThreadExit()

        run_in_proc(sim, body)
        assert quiet_device.memory.bytes_in_use == 0
