"""Edge cases of stream/engine/context behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda import (
    Context,
    Device,
    GpuTimingModel,
    Kernel,
    Runtime,
    cudaError_t,
    cudaMemcpyKind,
)
from repro.cuda.ops import KernelOp, MemcpyOp
from repro.cuda.kernel import LaunchConfig
from repro.simt import Simulator

E = cudaError_t
K = cudaMemcpyKind


def quiet_device(sim, seed=0):
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_mean = 0.0
    t.context_init_sigma = 0.0
    return Device(sim, timing=t, rng=np.random.default_rng(seed))


def in_proc(sim, fn):
    proc = sim.spawn(fn)
    sim.run()
    return proc.result


class TestStreamLifecycle:
    def test_enqueue_on_destroyed_stream_raises(self):
        sim = Simulator()
        dev = quiet_device(sim)
        ctx = Context(dev)
        st = ctx.create_stream()
        ctx.destroy_stream(st)
        with pytest.raises(RuntimeError):
            st.enqueue(KernelOp(ctx, Kernel("k", nominal_duration=1.0),
                                LaunchConfig.make(1, 1), ()))

    def test_destroying_default_stream_rejected(self):
        sim = Simulator()
        ctx = Context(quiet_device(sim))
        with pytest.raises(ValueError):
            ctx.destroy_stream(ctx.default_stream)

    def test_stream_idle_tracking(self):
        sim = Simulator()
        dev = quiet_device(sim)
        ctx = Context(dev)
        st = ctx.create_stream()
        assert st.idle
        op = KernelOp(ctx, Kernel("k", nominal_duration=1.0),
                      LaunchConfig.make(1, 1), ())
        st.enqueue(op)
        assert not st.idle
        sim.run()
        assert st.idle

    def test_stream_from_other_context_rejected(self):
        sim = Simulator()
        dev = quiet_device(sim)
        rt_a = Runtime(sim, [dev])
        rt_b = Runtime(sim, [dev])

        def body():
            _, st_a = rt_a.cudaStreamCreate()
            return rt_b.cudaStreamSynchronize(st_a)

        assert in_proc(sim, body) == E.cudaErrorInvalidResourceHandle

    def test_contexts_do_not_fence_each_other(self):
        """Legacy default-stream fences are per-context: one process's
        sync memcpy must not wait for another process's kernels."""
        sim = Simulator()
        dev = quiet_device(sim)
        rt_a = Runtime(sim, [dev])
        rt_b = Runtime(sim, [dev])
        times = {}

        def proc_a():
            rt_a.cudaMalloc(64)
            rt_a.launch(Kernel("slow", nominal_duration=5.0, occupancy=0.2),
                        1, 1)
            rt_a.cudaThreadSynchronize()

        def proc_b():
            _, ptr = rt_b.cudaMalloc(4096)
            sim.sleep(0.1)  # let A's kernel start
            t0 = sim.now
            rt_b.cudaMemcpy(np.zeros(4096, dtype=np.uint8), ptr, 4096,
                            K.cudaMemcpyDeviceToHost)
            times["b_memcpy"] = sim.now - t0

        sim.spawn(proc_a)
        sim.spawn(proc_b)
        sim.run()
        assert times["b_memcpy"] < 0.1  # no cross-context implicit wait


class TestEngineAccounting:
    def test_compute_engine_counters(self):
        sim = Simulator()
        dev = quiet_device(sim)
        rt = Runtime(sim, [dev])

        def body():
            rt.cudaMalloc(64)
            for _ in range(5):
                rt.launch(Kernel("k", nominal_duration=0.1), 1, 1)
            rt.cudaThreadSynchronize()

        in_proc(sim, body)
        assert dev.compute.kernels_executed == 5
        assert dev.compute.kernel_time == pytest.approx(0.5, rel=1e-9)
        assert dev.compute.running_count == 0
        assert dev.compute.queued_count == 0

    def test_head_of_line_blocking(self):
        """A full-occupancy kernel at the queue head blocks smaller
        kernels behind it even if they would fit (in-order dispatch)."""
        sim = Simulator()
        dev = quiet_device(sim)
        rt = Runtime(sim, [dev])
        order = []

        def noted(name, dur, occ):
            return Kernel(name, nominal_duration=dur, occupancy=occ,
                          semantic=lambda m, c, a: order.append(name))

        def body():
            rt.cudaMalloc(64)
            s = [rt.cudaStreamCreate()[1] for _ in range(3)]
            rt.launch(noted("big0", 1.0, 0.9), 1, 1, stream=s[0])
            rt.launch(noted("full", 1.0, 1.0), 1, 1, stream=s[1])
            rt.launch(noted("tiny", 0.1, 0.05), 1, 1, stream=s[2])
            rt.cudaThreadSynchronize()

        in_proc(sim, body)
        # tiny could fit beside big0 but sits behind full in the queue
        assert order == ["big0", "full", "tiny"]

    def test_dma_engine_is_shared_between_directions(self):
        """One DMA engine serves H2D and D2H (the Dirac configuration);
        opposite-direction transfers serialize."""
        sim = Simulator()
        dev = quiet_device(sim)
        rt = Runtime(sim, [dev])
        nbytes = 512 << 20

        def body():
            _, ptr = rt.cudaMalloc(nbytes)
            _, s1 = rt.cudaStreamCreate()
            _, s2 = rt.cudaStreamCreate()
            from repro.cuda.memory import HostRef

            t0 = sim.now
            rt.cudaMemcpyAsync(ptr, HostRef(nbytes, pinned=True), nbytes,
                               K.cudaMemcpyHostToDevice, s1)
            rt.cudaMemcpyAsync(HostRef(nbytes, pinned=True), ptr, nbytes,
                               K.cudaMemcpyDeviceToHost, s2)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        elapsed = in_proc(sim, body)
        h2d = dev.timing.h2d_time(nbytes, True)
        d2h = dev.timing.d2h_time(nbytes, True)
        assert elapsed == pytest.approx(h2d + d2h, rel=0.01)  # serialized


@settings(max_examples=30, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=1e-4, max_value=0.5, allow_nan=False),
        min_size=1, max_size=12,
    ),
    occupancy=st.floats(min_value=0.05, max_value=1.0),
)
def test_kernel_time_conservation(durations, occupancy):
    """Property: however kernels are scheduled, the engine's summed
    kernel time equals the sum of durations, and the device-side span
    is bounded by [max(durations), sum(durations)]."""
    sim = Simulator()
    dev = quiet_device(sim)
    rt = Runtime(sim, [dev])
    spans = {}

    def body():
        rt.cudaMalloc(64)
        streams = [rt.cudaStreamCreate()[1] for _ in durations]
        t0 = sim.now
        for d, st_ in zip(durations, streams):
            rt.launch(Kernel("k", nominal_duration=d, occupancy=occupancy),
                      1, 1, stream=st_)
        rt.cudaThreadSynchronize()
        spans["span"] = sim.now - t0

    sim.spawn(body)
    sim.run()
    assert dev.compute.kernel_time == pytest.approx(sum(durations), rel=1e-9)
    assert spans["span"] >= max(durations)
    assert spans["span"] <= sum(durations) + 1e-3 * len(durations)
