"""Transfer-size validation: bad counts fail fast with InvalidValue.

Regression suite for the hardening sweep: negative / non-integral /
boolean counts and spans overrunning the device allocation or the host
buffer must come back as ``cudaErrorInvalidValue`` (runtime) or
``CUDA_ERROR_INVALID_VALUE`` (driver), never as corrupt table entries
or crashes deep inside a device event.
"""

import numpy as np
import pytest

from repro.cuda import CUresult, Driver, cudaError_t, cudaMemcpyKind

from tests.cuda.conftest import run_in_proc

E = cudaError_t
R = CUresult
K = cudaMemcpyKind


@pytest.fixture()
def drv(rt):
    return Driver(rt)


def _setup(rt, nbytes=256):
    err, ptr = rt.cudaMalloc(nbytes)
    assert err == E.cudaSuccess
    host = np.zeros(nbytes // 8, dtype=np.float64)
    return ptr, host


class TestSyncMemcpyCounts:
    @pytest.mark.parametrize("count", [-1, -4096, True, 3.5, "64"])
    def test_bad_count_is_invalid_value(self, sim, rt, count):
        def body():
            ptr, host = _setup(rt)
            return rt.cudaMemcpy(ptr, host, count, K.cudaMemcpyHostToDevice)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue

    def test_count_overrunning_the_device_allocation(self, sim, rt):
        def body():
            ptr, _ = _setup(rt, nbytes=256)
            big = np.zeros(128, dtype=np.float64)  # 1024B host source
            return rt.cudaMemcpy(ptr, big, 1024, K.cudaMemcpyHostToDevice)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue

    def test_count_overrunning_the_host_buffer(self, sim, rt):
        def body():
            ptr, host = _setup(rt, nbytes=4096)
            # host holds 512B; asking for 2048B overruns it
            small = np.zeros(64, dtype=np.float64)
            return rt.cudaMemcpy(ptr, small, 2048, K.cudaMemcpyHostToDevice)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue

    def test_d2h_is_validated_too(self, sim, rt):
        def body():
            ptr, host = _setup(rt)
            out = []
            out.append(rt.cudaMemcpy(host, ptr, -8, K.cudaMemcpyDeviceToHost))
            out.append(rt.cudaMemcpy(host, ptr, 4096, K.cudaMemcpyDeviceToHost))
            return out

        assert run_in_proc(sim, body) == [E.cudaErrorInvalidValue] * 2

    def test_valid_transfers_still_succeed(self, sim, rt):
        def body():
            ptr, host = _setup(rt)
            a = rt.cudaMemcpy(ptr, host, 256, K.cudaMemcpyHostToDevice)
            b = rt.cudaMemcpy(host, ptr, None, K.cudaMemcpyDeviceToHost)
            return a, b

        assert run_in_proc(sim, body) == (E.cudaSuccess, E.cudaSuccess)


class TestAsyncMemcpyCounts:
    @pytest.mark.parametrize("count", [-1, True, 2.5])
    def test_bad_count_fails_before_enqueue(self, sim, rt, count):
        def body():
            ptr, host = _setup(rt)
            _, stream = rt.cudaStreamCreate()
            err = rt.cudaMemcpyAsync(ptr, host, count,
                                     K.cudaMemcpyHostToDevice, stream)
            # the failed copy enqueued nothing: the stream is idle
            return err, rt.cudaStreamQuery(stream)

        err, q = run_in_proc(sim, body)
        assert err == E.cudaErrorInvalidValue
        assert q == E.cudaSuccess

    def test_async_span_overrun(self, sim, rt):
        def body():
            ptr, host = _setup(rt, nbytes=256)
            _, stream = rt.cudaStreamCreate()
            big = np.zeros(128, dtype=np.float64)
            return rt.cudaMemcpyAsync(ptr, big, 1024,
                                      K.cudaMemcpyHostToDevice, stream)

        assert run_in_proc(sim, body) == E.cudaErrorInvalidValue


class TestDriverMemcpyCounts:
    def _ctx(self, drv):
        assert drv.cuInit() == R.CUDA_SUCCESS
        err, _ctx = drv.cuCtxCreate(0, 0)
        assert err == R.CUDA_SUCCESS

    def test_htod_bad_count(self, sim, drv):
        def body():
            self._ctx(drv)
            err, ptr = drv.cuMemAlloc(256)
            host = np.zeros(32, dtype=np.float64)
            return (
                drv.cuMemcpyHtoD(ptr, host, -16),
                drv.cuMemcpyHtoD(ptr, host, 4096),
            )

        out = run_in_proc(sim, body)
        assert out == (R.CUDA_ERROR_INVALID_VALUE, R.CUDA_ERROR_INVALID_VALUE)

    def test_dtoh_bad_count(self, sim, drv):
        def body():
            self._ctx(drv)
            err, ptr = drv.cuMemAlloc(256)
            host = np.zeros(32, dtype=np.float64)
            return drv.cuMemcpyDtoH(host, ptr, 4096)

        assert run_in_proc(sim, body) == R.CUDA_ERROR_INVALID_VALUE

    def test_valid_driver_copy_succeeds(self, sim, drv):
        def body():
            self._ctx(drv)
            err, ptr = drv.cuMemAlloc(256)
            host = np.arange(32, dtype=np.float64)
            back = np.zeros(32, dtype=np.float64)
            a = drv.cuMemcpyHtoD(ptr, host, 256)
            b = drv.cuMemcpyDtoH(back, ptr, 256)
            return a, b, back

        a, b, back = run_in_proc(sim, body)
        assert (a, b) == (R.CUDA_SUCCESS, R.CUDA_SUCCESS)
        np.testing.assert_array_equal(back, np.arange(32, dtype=np.float64))
