"""Driver API and API-specification tests."""

import numpy as np
import pytest

from repro.cuda import (
    CUresult,
    Driver,
    DRIVER_API,
    Kernel,
    LaunchConfig,
    RUNTIME_API,
    Runtime,
    attach_stubs,
    flops_kernel,
)
from repro.cuda.kernel import _as_dim3

from tests.cuda.conftest import run_in_proc

R = CUresult


@pytest.fixture()
def drv(rt):
    return Driver(rt)


class TestDriverAPI:
    def test_requires_init(self, sim, drv):
        def body():
            return drv.cuDeviceGetCount()[0]

        assert run_in_proc(sim, body) == R.CUDA_ERROR_NOT_INITIALIZED

    def test_full_driver_flow(self, sim, drv, quiet_device):
        src = np.arange(16, dtype=np.float64)
        dst = np.zeros_like(src)

        def body():
            assert drv.cuInit() == R.CUDA_SUCCESS
            err, n = drv.cuDeviceGetCount()
            assert (err, n) == (R.CUDA_SUCCESS, 1)
            err, name = drv.cuDeviceGetName(0)
            assert name == "Tesla C2050"
            err, ctx = drv.cuCtxCreate(0, 0)
            assert err == R.CUDA_SUCCESS
            err, ptr = drv.cuMemAlloc(src.nbytes)
            assert err == R.CUDA_SUCCESS
            assert drv.cuMemcpyHtoD(ptr, src, src.nbytes) == R.CUDA_SUCCESS
            k = Kernel("dk", nominal_duration=0.1)
            drv.cuFuncSetBlockShape(k, 64, 1, 1)
            drv.cuParamSetv(k, 0, ptr)
            assert drv.cuLaunchGrid(k, 4, 1) == R.CUDA_SUCCESS
            assert drv.cuCtxSynchronize() == R.CUDA_SUCCESS
            assert drv.cuMemcpyDtoH(dst, ptr, src.nbytes) == R.CUDA_SUCCESS
            assert drv.cuMemFree(ptr) == R.CUDA_SUCCESS

        run_in_proc(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_driver_events_and_streams(self, sim, drv):
        def body():
            drv.cuInit()
            drv.cuCtxCreate()
            err, st = drv.cuStreamCreate()
            assert err == R.CUDA_SUCCESS
            err, ev = drv.cuEventCreate()
            assert err == R.CUDA_SUCCESS
            k = Kernel("k", nominal_duration=0.5)
            drv.cuFuncSetBlockShape(k, 1, 1, 1)
            drv.cuLaunchGrid(k, 1)
            drv.cuEventRecord(ev)
            assert drv.cuEventQuery(ev) == R.CUDA_ERROR_NOT_READY
            assert drv.cuEventSynchronize(ev) == R.CUDA_SUCCESS
            assert drv.cuStreamSynchronize(st) == R.CUDA_SUCCESS
            assert drv.cuStreamDestroy(st) == R.CUDA_SUCCESS

        run_in_proc(sim, body)

    def test_memset_d8_nonblocking(self, sim, drv):
        def body():
            drv.cuInit()
            drv.cuCtxCreate()
            err, ptr = drv.cuMemAlloc(1024)
            k = Kernel("k", nominal_duration=2.0)
            drv.cuFuncSetBlockShape(k, 1, 1, 1)
            drv.cuLaunchGrid(k, 1)
            t0 = sim.now
            drv.cuMemsetD8(ptr, 0, 1024)
            return sim.now - t0

        assert run_in_proc(sim, body) < 0.001

    def test_mem_get_info(self, sim, drv, quiet_device):
        def body():
            drv.cuInit()
            drv.cuCtxCreate()
            drv.cuMemAlloc(1 << 20)
            err, free, total = drv.cuMemGetInfo()
            return err, free, total

        err, free, total = run_in_proc(sim, body)
        assert err == R.CUDA_SUCCESS
        assert total == quiet_device.spec.memory_bytes
        assert free == total - (1 << 20)


class TestSpec:
    def test_counts_match_paper(self):
        assert len(RUNTIME_API) == 65  # "65 calls in the runtime API"
        assert len(DRIVER_API) == 99   # "99 calls in the driver API"

    def test_no_duplicate_names(self):
        names = [c.name for c in RUNTIME_API + DRIVER_API]
        assert len(names) == len(set(names))

    def test_prefixes(self):
        assert all(c.name.startswith("cuda") for c in RUNTIME_API)
        assert all(
            c.name.startswith("cu") and not c.name.startswith("cuda")
            for c in DRIVER_API
        )

    def test_memset_not_in_blocking_category(self):
        for api in (RUNTIME_API, DRIVER_API):
            for c in api:
                if "emset" in c.name.lower():
                    assert not c.blocking, c.name

    def test_sync_memcpys_marked_blocking(self):
        from repro.cuda import RUNTIME_BY_NAME, DRIVER_BY_NAME

        assert RUNTIME_BY_NAME["cudaMemcpy"].blocking
        assert not RUNTIME_BY_NAME["cudaMemcpyAsync"].blocking
        assert DRIVER_BY_NAME["cuMemcpyDtoH"].blocking
        assert not DRIVER_BY_NAME["cuMemcpyDtoHAsync"].blocking

    def test_attach_stubs_completes_surface(self, sim, rt):
        charged = []
        added = attach_stubs(rt, RUNTIME_API, charged.append, 1e-7)
        assert added  # some calls are stubs (e.g. texture/array ops)
        for c in RUNTIME_API:
            assert callable(getattr(rt, c.name)), c.name
        # stubs are callable and charge
        assert rt.cudaMalloc3DArray() == 0
        assert charged == [1e-7]

    def test_stubs_do_not_override_real_calls(self, sim, rt):
        attach_stubs(rt, RUNTIME_API, lambda c: None, 1e-7)
        err, n = rt.cudaGetDeviceCount()
        assert n == 1  # real implementation intact


class TestKernelObjects:
    def test_requires_exactly_one_duration_source(self):
        with pytest.raises(ValueError):
            Kernel("k")
        with pytest.raises(ValueError):
            Kernel("k", nominal_duration=1.0, duration_fn=lambda c, a, s: 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", nominal_duration=-1.0)

    def test_occupancy_bounds(self):
        with pytest.raises(ValueError):
            Kernel("k", nominal_duration=1.0, occupancy=0.0)
        with pytest.raises(ValueError):
            Kernel("k", nominal_duration=1.0, occupancy=1.5)

    def test_flops_kernel_duration(self):
        from repro.cuda import TESLA_C2050

        k = flops_kernel("gemm", flops=515e9 * 0.6, efficiency=0.6)
        cfg = LaunchConfig.make(1, 1)
        assert k.duration(cfg, (), TESLA_C2050) == pytest.approx(1.0, rel=1e-4)

    def test_flops_kernel_callable_flops(self):
        from repro.cuda import TESLA_C2050

        k = flops_kernel("axpy", flops=lambda cfg, args: args[0] * 2.0,
                         efficiency=1.0)
        cfg = LaunchConfig.make(1, 1)
        d1 = k.duration(cfg, (1000,), TESLA_C2050)
        d2 = k.duration(cfg, (2000,), TESLA_C2050)
        assert d2 > d1

    def test_dim3_coercion(self):
        assert _as_dim3(5) == (5, 1, 1)
        assert _as_dim3((2, 3)) == (2, 3, 1)
        assert _as_dim3((2, 3, 4)) == (2, 3, 4)
        with pytest.raises(ValueError):
            _as_dim3(0)

    def test_launch_config_total_threads(self):
        cfg = LaunchConfig.make((2, 2), (32, 4))
        assert cfg.total_threads == 2 * 2 * 32 * 4
