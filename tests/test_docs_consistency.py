"""Documentation ↔ code consistency guards.

The README/DESIGN/EXPERIMENTS cite specific facts about the code (API
surface sizes, example scripts, benchmark files).  These tests keep
the documents honest as the code evolves.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(REPO, name), encoding="utf-8") as fh:
        return fh.read()


class TestCitedApiSurfaceSizes:
    """The paper's numbers, cited in the docs, must match the specs."""

    def test_runtime_and_driver_counts(self):
        from repro.cuda import DRIVER_API, RUNTIME_API

        assert len(RUNTIME_API) == 65
        assert len(DRIVER_API) == 99
        readme = read("README.md")
        assert "65 + 99" in readme or ("65" in readme and "99" in readme)

    def test_cublas_cufft_counts(self):
        from repro.libs import CUBLAS_API, CUFFT_API

        assert len(CUBLAS_API) == 167
        assert len(CUFFT_API) == 13
        readme = read("README.md")
        assert "167" in readme and "13" in readme

    def test_amber_kernel_count(self):
        from repro.apps.amber import _REST_KERNELS, _TOP_KERNELS

        assert len(_TOP_KERNELS) + len(_REST_KERNELS) == 39


class TestReadmeExamplesExist:
    def test_every_cited_example_script_exists(self):
        readme = read("README.md")
        cited = set(re.findall(r"`examples/([a-z_0-9]+\.py)`", readme))
        assert cited, "README should cite example scripts"
        for script in cited:
            assert os.path.exists(os.path.join(REPO, "examples", script)), script

    def test_at_least_three_examples(self):
        scripts = [
            f for f in os.listdir(os.path.join(REPO, "examples"))
            if f.endswith(".py")
        ]
        assert len(scripts) >= 3
        assert "quickstart.py" in scripts


class TestExperimentsCitesRealBenchmarks:
    def test_every_cited_bench_file_exists(self):
        text = read("EXPERIMENTS.md") + read("DESIGN.md")
        cited = set(re.findall(r"benchmarks/(bench_[a-z_0-9]+\.py)", text))
        assert cited
        for bench in cited:
            assert os.path.exists(os.path.join(REPO, "benchmarks", bench)), bench

    def test_every_figure_and_table_has_a_bench(self):
        benches = os.listdir(os.path.join(REPO, "benchmarks"))
        for needle in ("fig4_6", "table1", "fig8", "fig9", "fig10", "fig11"):
            assert any(needle in b for b in benches), needle


class TestDesignInventoryMatchesPackages:
    def test_every_design_subpackage_exists(self):
        import importlib

        for pkg in ("repro.core", "repro.simt", "repro.cuda", "repro.mpi",
                    "repro.libs", "repro.cluster", "repro.apps",
                    "repro.analysis", "repro.ocl"):
            importlib.import_module(pkg)

    def test_table1_rows_match_paper_reference(self):
        from repro.apps.sdk import PAPER_TABLE1

        assert len(PAPER_TABLE1) == 8
        assert PAPER_TABLE1["scan"].invocations == 3300
        assert PAPER_TABLE1["BlackScholes"].profiler_seconds == pytest.approx(
            2.540677
        )
