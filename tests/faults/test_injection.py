"""Injected faults are observed by IPM — and degrade, never crash."""

import numpy as np
import pytest

from repro import IpmConfig, JobSpec, run_job
from repro.cuda import Kernel, cudaError_t, cudaMemcpyKind
from repro.faults import (
    CudaFaultSpec,
    FaultPlan,
    MpiDelaySpec,
    NodeSlowdownSpec,
    StreamSlowdownSpec,
)
from repro.telemetry.config import TelemetryConfig

E = cudaError_t
K = cudaMemcpyKind


def little_app(env):
    """malloc + H2D + kernel + D2H + host compute + allreduce."""
    err, ptr = env.rt.cudaMalloc(8000)
    host = np.zeros(1000)
    env.rt.cudaMemcpy(ptr, host, 8000, K.cudaMemcpyHostToDevice)
    env.rt.launch(Kernel("work", nominal_duration=0.01), 100, 64, args=(ptr,))
    env.rt.cudaMemcpy(host, ptr, 8000, K.cudaMemcpyDeviceToHost)
    env.hostcompute(0.05)
    total = env.mpi.MPI_Allreduce(env.rank)
    env.rt.cudaFree(ptr)
    return total


class TestCudaErrorInjection:
    def test_injected_error_reaches_the_application(self):
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMemcpy", error=E.cudaErrorInvalidValue,
                          max_failures=1)
        ])

        seen = []

        def app(env):
            err, ptr = env.rt.cudaMalloc(64)
            host = np.zeros(8)
            seen.append(env.rt.cudaMemcpy(ptr, host, 64, K.cudaMemcpyHostToDevice))
            seen.append(env.rt.cudaMemcpy(ptr, host, 64, K.cudaMemcpyHostToDevice))
            # the injected error is sticky in cudaGetLastError until read
            env.rt.cudaFree(ptr)

        run_job(JobSpec(app=app, ntasks=1, faults=plan))
        assert seen == [E.cudaErrorInvalidValue, E.cudaSuccess]

    def test_monitored_failure_is_error_tagged_and_counted(self):
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMemcpy", error=E.cudaErrorInvalidValue,
                          max_failures=1)
        ])
        tcfg = TelemetryConfig(enabled=True, interval=0.01, sinks=("memory",))
        res = run_job(JobSpec(app=little_app, ntasks=2,
                              ipm=IpmConfig(telemetry=tcfg), faults=plan))
        by = res.report.merged_by_name()
        # per-rank first H2D failed on both ranks: tagged name + region
        assert by["cudaMemcpy(H2D)(!cudaErrorInvalidValue)"].count == 2
        assert by["@CUDA_ERROR"].count == 2
        # healthy events kept their untagged names
        assert by["cudaMemcpy(D2H)"].count == 2
        # telemetry error series observed the failures
        errs = [
            p for p in res.telemetry.sink("memory").points()
            if p.name == "ipm_errors_total"
        ]
        assert errs and max(p.value for p in errs) == 1.0
        # and the injector's schedule log has exactly the two firings
        fired = [e for e in res.faults.events if e.kind == "cuda"]
        assert len(fired) == 2
        assert all(e.detail == "cudaMemcpy:cudaErrorInvalidValue" for e in fired)

    def test_error_counts_per_domain(self):
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMalloc", error=E.cudaErrorMemoryAllocation,
                          max_failures=1)
        ])

        def app(env):
            env.rt.cudaMalloc(64)

        res = run_job(JobSpec(app=app, ntasks=1, ipm=IpmConfig(), faults=plan))
        task = res.report.tasks[0]
        assert task.status == "completed"
        by = task.by_name()
        assert by["cudaMalloc(!cudaErrorMemoryAllocation)"].count == 1

    def test_plan_can_ride_on_ipm_config(self):
        """`IpmConfig.faults` is an alternate route for the same plan."""
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMalloc", error=E.cudaErrorMemoryAllocation,
                          max_failures=1)
        ])

        def app(env):
            env.rt.cudaMalloc(64)

        res = run_job(JobSpec(app=app, ntasks=1, ipm=IpmConfig(faults=plan)))
        by = res.report.tasks[0].by_name()
        assert by["cudaMalloc(!cudaErrorMemoryAllocation)"].count == 1
        # an explicit spec-level plan wins over the config's plan
        quiet = run_job(JobSpec(app=app, ntasks=1, ipm=IpmConfig(faults=plan),
                                faults=FaultPlan()))
        assert quiet.faults is None

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="*", error=E.cudaErrorInvalidValue, rate=0.0)
        ])
        res = run_job(JobSpec(app=little_app, ntasks=2, ipm=IpmConfig(),
                              faults=plan))
        assert res.faults.events == []
        assert "@CUDA_ERROR" not in res.report.merged_by_name()


class TestSlowdowns:
    def test_stream_slowdown_lengthens_device_work(self):
        base = run_job(JobSpec(app=little_app, ntasks=2, seed=7))
        slow = run_job(JobSpec(
            app=little_app, ntasks=2, seed=7,
            faults=FaultPlan(streams=[StreamSlowdownSpec(multiplier=8.0)]),
        ))
        assert slow.wallclock > base.wallclock

    def test_node_slowdown_hits_only_matching_nodes(self):
        def app(env):
            env.hostcompute(0.1)

        base = run_job(JobSpec(app=app, ntasks=2, seed=7))
        slow = run_job(JobSpec(
            app=app, ntasks=2, seed=7,
            faults=FaultPlan(nodes=[NodeSlowdownSpec(multiplier=3.0, nodes=(0,))]),
        ))
        # rank 0 (node 0) computes 0.3s, rank 1 unchanged at 0.1s
        assert slow.wallclock == pytest.approx(3 * base.wallclock, rel=1e-6)
        untouched = run_job(JobSpec(
            app=app, ntasks=2, seed=7,
            faults=FaultPlan(nodes=[NodeSlowdownSpec(multiplier=3.0, nodes=(9,))]),
        ))
        assert untouched.wallclock == base.wallclock

    def test_windowed_slowdown_expires(self):
        def app(env):
            env.hostcompute(0.1)

        # window opens long after the job finished: no effect at all
        res = run_job(JobSpec(
            app=app, ntasks=1, seed=7,
            faults=FaultPlan(nodes=[NodeSlowdownSpec(multiplier=5.0,
                                                     t0=10.0, t1=20.0)]),
        ))
        base = run_job(JobSpec(app=app, ntasks=1, seed=7))
        assert res.wallclock == base.wallclock


def pingpong_app(env):
    """Point-to-point traffic (collectives are closed-form, p2p moves
    through :class:`~repro.mpi.network.Network` where delay injects)."""
    payload = b"x" * 4096
    for _ in range(8):
        if env.rank == 0:
            env.mpi.MPI_Send(payload, dest=1)
            env.mpi.MPI_Recv(source=1)
        else:
            env.mpi.MPI_Recv(source=0)
            env.mpi.MPI_Send(payload, dest=0)


class TestMpiDelay:
    def test_delay_spikes_slow_the_job_and_are_logged(self):
        base = run_job(JobSpec(app=pingpong_app, ntasks=2, seed=5))
        plan = FaultPlan(mpi=[MpiDelaySpec(rate=1.0, extra_mean=0.02)])
        slow = run_job(JobSpec(app=pingpong_app, ntasks=2, seed=5, faults=plan))
        assert slow.wallclock > base.wallclock
        spikes = [e for e in slow.faults.events if e.kind == "mpi_delay"]
        assert spikes
        assert all(e.value > 0 for e in spikes)
        assert all(e.rank == -1 for e in spikes)
