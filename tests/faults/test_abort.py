"""Rank aborts degrade gracefully: partial report, flushed telemetry."""

import json

import pytest

from repro import IpmConfig, JobSpec, run_job
from repro.apps.hpl import HplConfig, hpl_app
from repro.core.banner import banner
from repro.faults import FaultPlan, RankAborted, RankAbortSpec
from repro.telemetry.config import TelemetryConfig


def _faulted_hpl(tmp_path, abort_at):
    tcfg = TelemetryConfig(
        enabled=True,
        interval=0.020,
        sinks=("memory", "jsonl"),
        jsonl_path=str(tmp_path / "telemetry.jsonl"),
    )
    return run_job(JobSpec(
        app=lambda env: hpl_app(env, HplConfig.tiny()),
        ntasks=2,
        command="./xhpl.cuda",
        ipm=IpmConfig(telemetry=tcfg),
        seed=3,
        faults=FaultPlan(aborts=[RankAbortSpec(rank=1, at=abort_at)]),
    ))


#: mid-factorization abort point: past the ~1.2 s context-creation
#: phase (the first cudaMalloc returns only after the context init is
#: served), with several LU steps already profiled, well before the
#: ~3.9 s baseline finish.
MID_RUN = 2.0


class TestAbortMidJob:
    def test_partial_report_with_per_rank_status(self, tmp_path):
        res = _faulted_hpl(tmp_path, abort_at=MID_RUN)
        job = res.report
        assert job is not None and job.ntasks == 2
        assert not job.complete
        statuses = job.rank_statuses()
        assert statuses[1] == "aborted"
        # the survivor either finished or blocked forever on its dead
        # peer (HPL is collective-heavy, so stalling is the norm)
        assert statuses[0] in ("completed", "stalled")
        # both ranks still carry their monitoring state up to the fault
        assert len(job.tasks[1].table) > 0
        # the abort itself is on the fired-fault schedule
        aborts = [e for e in res.faults.events if e.kind == "abort"]
        assert len(aborts) == 1
        assert aborts[0].rank == 1
        assert aborts[0].t >= MID_RUN

    def test_banner_carries_the_status_line(self, tmp_path):
        res = _faulted_hpl(tmp_path, abort_at=MID_RUN)
        text = banner(res.report)
        status = [l for l in text.splitlines() if l.startswith("# status")]
        assert len(status) == 1
        assert "rank 1: aborted" in status[0]

    def test_telemetry_flushed_despite_the_abort(self, tmp_path):
        res = _faulted_hpl(tmp_path, abort_at=MID_RUN)
        hub = res.telemetry
        assert hub is not None
        mem = hub.sink("memory")
        assert mem.closed and len(mem) > 0
        lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "meta"
        assert any(json.loads(l)["kind"] == "sample" for l in lines[1:])

    def test_abort_at_time_zero_kills_before_any_work(self, tmp_path):
        res = _faulted_hpl(tmp_path, abort_at=0.0)
        assert res.report.rank_statuses()[1] == "aborted"

    def test_unplanned_crash_still_propagates(self):
        """Only *planned* aborts are absorbed — real bugs must surface."""
        from repro.simt import ProcessCrashed

        def app(env):
            if env.rank == 1:
                raise RuntimeError("actual bug")
            env.mpi.MPI_Barrier()

        with pytest.raises(ProcessCrashed):
            run_job(JobSpec(
                app=app, ntasks=2,
                faults=FaultPlan(aborts=[RankAbortSpec(0, 99.0)]),
            ))

    def test_hand_raised_rankaborted_outside_a_plan_propagates(self):
        """RankAborted raised by app code without an injector is a crash."""
        from repro.simt import ProcessCrashed

        def app(env):
            raise RankAborted(env.rank, env.sim.now)

        with pytest.raises(ProcessCrashed):
            run_job(JobSpec(app=app, ntasks=1))

    def test_unmonitored_abort_gives_partial_results(self):
        def app(env):
            for _ in range(4):  # abort checks happen at call boundaries
                env.hostcompute(0.05)
            return env.rank

        res = run_job(JobSpec(
            app=app, ntasks=2,
            faults=FaultPlan(aborts=[RankAbortSpec(rank=1, at=0.1)]),
        ))
        assert res.report is None
        assert res.results[0] == 0
        assert res.results[1] is None  # the aborted rank never returned
