"""retry_with_backoff: virtual-time backoff around retryable failures."""

import pytest

from repro import JobSpec, run_job
from repro.cuda import cudaError_t
from repro.faults import (
    RETRYABLE_CUDA,
    CudaFaultSpec,
    FaultPlan,
    RetriesExhausted,
    retry_with_backoff,
)

E = cudaError_t


def _in_sim(fn):
    """Run ``fn(env)`` on one simulated rank; returns its result."""
    return run_job(JobSpec(app=fn, ntasks=1)).results[0]


class TestRetryLoop:
    def test_success_after_transient_failures(self):
        def app(env):
            calls = []

            def flaky():
                calls.append(env.sim.now)
                if len(calls) < 3:
                    return E.cudaErrorMemoryAllocation
                return E.cudaSuccess

            t0 = env.sim.now
            out = retry_with_backoff(env.sim, flaky,
                                     base_delay=0.01, factor=2.0)
            # two backoff sleeps: 0.01 + 0.02 virtual seconds
            return out, len(calls), env.sim.now - t0

        out, ncalls, elapsed = _in_sim(app)
        assert out == E.cudaSuccess
        assert ncalls == 3
        assert elapsed == pytest.approx(0.03)

    def test_tuple_results_follow_the_out_parameter_convention(self):
        def app(env):
            results = iter([
                (E.cudaErrorMemoryAllocation, None),
                (E.cudaSuccess, 0xDEAD),
            ])
            return retry_with_backoff(env.sim, lambda: next(results),
                                      base_delay=0.001)

        assert _in_sim(app) == (E.cudaSuccess, 0xDEAD)

    def test_permanent_error_returned_without_retry(self):
        def app(env):
            calls = []

            def broken():
                calls.append(1)
                return E.cudaErrorInvalidValue  # misuse: not retryable

            t0 = env.sim.now
            out = retry_with_backoff(env.sim, broken, base_delay=0.01)
            return out, len(calls), env.sim.now - t0

        out, ncalls, elapsed = _in_sim(app)
        assert out == E.cudaErrorInvalidValue
        assert ncalls == 1
        assert elapsed == 0.0

    def test_retries_exhausted(self):
        def app(env):
            with pytest.raises(RetriesExhausted) as err:
                retry_with_backoff(
                    env.sim, lambda: E.cudaErrorLaunchFailure,
                    attempts=3, base_delay=0.001,
                )
            return err.value.attempts, err.value.last_result

        attempts, last = _in_sim(app)
        assert attempts == 3
        assert last == E.cudaErrorLaunchFailure

    def test_custom_is_retryable(self):
        def app(env):
            results = iter(["try-again", "ok"])
            return retry_with_backoff(
                env.sim, lambda: next(results),
                base_delay=0.001, is_retryable=lambda r: r == "try-again",
            )

        assert _in_sim(app) == "ok"

    def test_validation(self):
        def app(env):
            for bad in (
                dict(attempts=0),
                dict(base_delay=-1.0),
                dict(factor=0.0),
            ):
                with pytest.raises(ValueError):
                    retry_with_backoff(env.sim, lambda: None, **bad)
            return True

        assert _in_sim(app)


class TestRetryAgainstInjectedFaults:
    def test_transient_oom_survived_by_retrying(self):
        """Injected OOMs stop after max_failures; the retry outlives them."""
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMalloc",
                          error=E.cudaErrorMemoryAllocation,
                          max_failures=2)
        ])

        def app(env):
            err, ptr = retry_with_backoff(
                env.sim, lambda: env.rt.cudaMalloc(4096),
                attempts=8, base_delay=0.02,
            )
            assert ptr is not None
            env.rt.cudaFree(ptr)
            return err

        res = run_job(JobSpec(app=app, ntasks=1, faults=plan))
        assert res.results[0] == E.cudaSuccess
        # both budgeted OOMs actually fired before the success
        oom = [e for e in res.faults.events if e.kind == "cuda"]
        assert len(oom) == 2

    def test_retryable_set_contents(self):
        assert E.cudaErrorMemoryAllocation in RETRYABLE_CUDA
        assert E.cudaErrorInvalidValue not in RETRYABLE_CUDA
