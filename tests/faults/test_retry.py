"""retry_with_backoff: virtual-time backoff around retryable failures."""

import pytest

from repro import JobSpec, run_job
from repro.cuda import cudaError_t
from repro.faults import (
    RETRYABLE_CUDA,
    CudaFaultSpec,
    FaultPlan,
    RetriesExhausted,
    retry_with_backoff,
)

E = cudaError_t


def _in_sim(fn):
    """Run ``fn(env)`` on one simulated rank; returns its result."""
    return run_job(JobSpec(app=fn, ntasks=1)).results[0]


class TestRetryLoop:
    def test_success_after_transient_failures(self):
        def app(env):
            calls = []

            def flaky():
                calls.append(env.sim.now)
                if len(calls) < 3:
                    return E.cudaErrorMemoryAllocation
                return E.cudaSuccess

            t0 = env.sim.now
            out = retry_with_backoff(env.sim, flaky,
                                     base_delay=0.01, factor=2.0)
            # two backoff sleeps: 0.01 + 0.02 virtual seconds
            return out, len(calls), env.sim.now - t0

        out, ncalls, elapsed = _in_sim(app)
        assert out == E.cudaSuccess
        assert ncalls == 3
        assert elapsed == pytest.approx(0.03)

    def test_tuple_results_follow_the_out_parameter_convention(self):
        def app(env):
            results = iter([
                (E.cudaErrorMemoryAllocation, None),
                (E.cudaSuccess, 0xDEAD),
            ])
            return retry_with_backoff(env.sim, lambda: next(results),
                                      base_delay=0.001)

        assert _in_sim(app) == (E.cudaSuccess, 0xDEAD)

    def test_permanent_error_returned_without_retry(self):
        def app(env):
            calls = []

            def broken():
                calls.append(1)
                return E.cudaErrorInvalidValue  # misuse: not retryable

            t0 = env.sim.now
            out = retry_with_backoff(env.sim, broken, base_delay=0.01)
            return out, len(calls), env.sim.now - t0

        out, ncalls, elapsed = _in_sim(app)
        assert out == E.cudaErrorInvalidValue
        assert ncalls == 1
        assert elapsed == 0.0

    def test_retries_exhausted(self):
        def app(env):
            with pytest.raises(RetriesExhausted) as err:
                retry_with_backoff(
                    env.sim, lambda: E.cudaErrorLaunchFailure,
                    attempts=3, base_delay=0.001,
                )
            return err.value.attempts, err.value.last_result

        attempts, last = _in_sim(app)
        assert attempts == 3
        assert last == E.cudaErrorLaunchFailure

    def test_custom_is_retryable(self):
        def app(env):
            results = iter(["try-again", "ok"])
            return retry_with_backoff(
                env.sim, lambda: next(results),
                base_delay=0.001, is_retryable=lambda r: r == "try-again",
            )

        assert _in_sim(app) == "ok"

    def test_validation(self):
        def app(env):
            for bad in (
                dict(attempts=0),
                dict(base_delay=-1.0),
                dict(factor=0.0),
            ):
                with pytest.raises(ValueError):
                    retry_with_backoff(env.sim, lambda: None, **bad)
            return True

        assert _in_sim(app)


class TestRetryAgainstInjectedFaults:
    def test_transient_oom_survived_by_retrying(self):
        """Injected OOMs stop after max_failures; the retry outlives them."""
        plan = FaultPlan(cuda=[
            CudaFaultSpec(call="cudaMalloc",
                          error=E.cudaErrorMemoryAllocation,
                          max_failures=2)
        ])

        def app(env):
            err, ptr = retry_with_backoff(
                env.sim, lambda: env.rt.cudaMalloc(4096),
                attempts=8, base_delay=0.02,
            )
            assert ptr is not None
            env.rt.cudaFree(ptr)
            return err

        res = run_job(JobSpec(app=app, ntasks=1, faults=plan))
        assert res.results[0] == E.cudaSuccess
        # both budgeted OOMs actually fired before the success
        oom = [e for e in res.faults.events if e.kind == "cuda"]
        assert len(oom) == 2

    def test_retryable_set_contents(self):
        assert E.cudaErrorMemoryAllocation in RETRYABLE_CUDA
        assert E.cudaErrorInvalidValue not in RETRYABLE_CUDA


class TestJitterAndBounds:
    def test_jitter_requires_seeded_rng(self):
        def app(env):
            with pytest.raises(ValueError, match="seeded rng"):
                retry_with_backoff(env.sim, lambda: None, jitter=0.5)
            with pytest.raises(ValueError, match="jitter"):
                retry_with_backoff(env.sim, lambda: None, jitter=1.5)
            return True

        assert _in_sim(app)

    def test_jitter_is_deterministic_and_bounded(self):
        """Same RngStreams seed => identical jittered backoff schedule."""
        from repro.simt.random import RngStreams

        def schedule():
            rng = RngStreams(42).get("retry.test")

            def app(env):
                times = []

                def failing():
                    times.append(env.sim.now)
                    return E.cudaErrorMemoryAllocation

                with pytest.raises(RetriesExhausted):
                    retry_with_backoff(env.sim, failing, attempts=4,
                                       base_delay=0.1, jitter=0.5, rng=rng)
                return times

            return _in_sim(app)

        a, b = schedule(), schedule()
        assert a == b  # bit-reproducible under a fixed seed
        delays = [t2 - t1 for t1, t2 in zip(a, a[1:])]
        for delay, nominal in zip(delays, (0.1, 0.2, 0.4)):
            assert nominal * 0.5 <= delay <= nominal * 1.5
        assert delays != [0.1, 0.2, 0.4]  # jitter actually moved them

    def test_max_elapsed_stops_before_overshooting(self):
        """The loop refuses to start a sleep that would exceed the bound."""
        def app(env):
            calls = []

            def failing():
                calls.append(env.sim.now)
                return E.cudaErrorMemoryAllocation

            t0 = env.sim.now
            with pytest.raises(RetriesExhausted) as err:
                retry_with_backoff(env.sim, failing, attempts=10,
                                   base_delay=1.0, max_elapsed=4.0)
            return len(calls), env.sim.now - t0, err.value.attempts

        ncalls, elapsed, attempts = _in_sim(app)
        # delays 1, 2 fit (3s total); the 4s delay would overshoot 4.0
        assert ncalls == 3
        assert attempts == 3
        assert elapsed == pytest.approx(3.0)

    def test_max_elapsed_validation(self):
        def app(env):
            with pytest.raises(ValueError, match="max_elapsed"):
                retry_with_backoff(env.sim, lambda: None, max_elapsed=0.0)
            return True

        assert _in_sim(app)

    def test_host_clock_mode_sleeps_real_time(self):
        """sim=None retries on the host clock (the supervised runner's path)."""
        import time

        results = iter(["flaky", "flaky", "done"])
        t0 = time.monotonic()
        out = retry_with_backoff(
            None, lambda: next(results),
            base_delay=0.01, is_retryable=lambda r: r == "flaky",
        )
        assert out == "done"
        assert time.monotonic() - t0 >= 0.03  # 0.01 + 0.02 host seconds

    def test_host_clock_max_elapsed(self):
        with pytest.raises(RetriesExhausted):
            retry_with_backoff(
                None, lambda: "flaky",
                attempts=50, base_delay=0.02, factor=1.0,
                is_retryable=lambda r: r == "flaky", max_elapsed=0.05,
            )
