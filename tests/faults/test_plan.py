"""FaultPlan/spec validation: bad plans must fail at construction."""

import pytest

from repro.cuda import cudaError_t
from repro.faults import (
    CudaFaultSpec,
    FaultInjector,
    FaultPlan,
    MpiDelaySpec,
    NodeSlowdownSpec,
    RankAbortSpec,
    StreamSlowdownSpec,
)
from repro.simt import RngStreams, Simulator

E = cudaError_t


class TestCudaFaultSpec:
    def test_defaults_are_valid(self):
        spec = CudaFaultSpec()
        assert spec.call == "cudaLaunch"
        assert spec.matches(0, "cudaLaunch", 0.0)

    def test_unknown_call_rejected(self):
        with pytest.raises(ValueError, match="not an injectable"):
            CudaFaultSpec(call="cudaFrobnicate")

    def test_wildcard_call_accepted(self):
        spec = CudaFaultSpec(call="*", error=E.cudaErrorMemoryAllocation)
        assert spec.matches(3, "cudaMalloc", 1.0)
        assert spec.matches(3, "cudaMemcpy", 1.0)

    def test_success_is_not_a_fault(self):
        with pytest.raises(ValueError, match="cudaSuccess"):
            CudaFaultSpec(error=E.cudaSuccess)

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            CudaFaultSpec(rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            CudaFaultSpec(rate=-0.1)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            CudaFaultSpec(t0=2.0, t1=1.0)
        with pytest.raises(ValueError, match="window"):
            CudaFaultSpec(t0=-1.0)

    def test_window_is_half_open(self):
        spec = CudaFaultSpec(t0=1.0, t1=2.0)
        assert not spec.matches(0, "cudaLaunch", 0.999)
        assert spec.matches(0, "cudaLaunch", 1.0)
        assert not spec.matches(0, "cudaLaunch", 2.0)

    def test_rank_filter(self):
        spec = CudaFaultSpec(ranks=[1, 3])
        assert spec.matches(1, "cudaLaunch", 0.0)
        assert not spec.matches(0, "cudaLaunch", 0.0)

    def test_max_failures_positive(self):
        with pytest.raises(ValueError, match="max_failures"):
            CudaFaultSpec(max_failures=0)


class TestOtherSpecs:
    def test_multipliers_must_be_positive(self):
        with pytest.raises(ValueError, match="multiplier"):
            StreamSlowdownSpec(multiplier=0.0)
        with pytest.raises(ValueError, match="multiplier"):
            NodeSlowdownSpec(multiplier=-2.0)

    def test_mpi_rate_and_mean(self):
        with pytest.raises(ValueError, match="rate"):
            MpiDelaySpec(rate=0.0)
        with pytest.raises(ValueError, match="extra_mean"):
            MpiDelaySpec(extra_mean=0.0)

    def test_abort_validation(self):
        with pytest.raises(ValueError, match="rank"):
            RankAbortSpec(rank=-1, at=0.0)
        with pytest.raises(ValueError, match="abort time"):
            RankAbortSpec(rank=0, at=-1.0)


class TestFaultPlan:
    def test_lists_become_tuples(self):
        plan = FaultPlan(cuda=[CudaFaultSpec()], aborts=[RankAbortSpec(0, 1.0)])
        assert isinstance(plan.cuda, tuple)
        assert isinstance(plan.aborts, tuple)

    def test_duplicate_aborts_rejected(self):
        with pytest.raises(ValueError, match="duplicate abort"):
            FaultPlan(aborts=[RankAbortSpec(1, 1.0), RankAbortSpec(1, 2.0)])

    def test_empty_plan_is_inactive(self):
        assert FaultPlan().empty
        assert not FaultPlan().active

    def test_disabled_plan_is_inactive(self):
        plan = FaultPlan(enabled=False, cuda=[CudaFaultSpec()])
        assert not plan.active

    def test_injector_refuses_inactive_plan(self):
        with pytest.raises(ValueError, match="enabled, non-empty"):
            FaultInjector(FaultPlan(), RngStreams(0), 1, Simulator())
