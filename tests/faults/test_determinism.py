"""Seeded fault schedules are reproducible; disabled plans are free.

Two guarantees of the fault subsystem:

* same seed + same plan => byte-identical fault schedule, reports and
  banner (the paper-repro golden-output discipline extends to faults);
* a disabled or empty :class:`FaultPlan` is indistinguishable from no
  plan at all — the un-faulted hot path must not shift by one byte.
"""

import pytest

from repro import IpmConfig, JobSpec, run_job
from repro.apps.hpl import HplConfig, hpl_app
from repro.core.banner import banner
from repro.cuda import cudaError_t
from repro.faults import CudaFaultSpec, FaultPlan, MpiDelaySpec

E = cudaError_t

#: a plan exercising both RNG channels: probabilistic CUDA faults (the
#: per-rank streams) and MPI delay spikes (the shared stream).
CHAOS = FaultPlan(
    cuda=[CudaFaultSpec(call="*", error=E.cudaErrorLaunchFailure, rate=0.2)],
    mpi=[MpiDelaySpec(rate=0.5, extra_mean=0.003)],
)


def _run(faults=None, seed=11):
    # Stream ids are per-simulation (Simulator.next_id), so repeated
    # runs need no global pinning to line their STRMxx names up.
    return run_job(JobSpec(
        app=lambda env: hpl_app(env, HplConfig.tiny()),
        ntasks=2,
        command="./xhpl.cuda",
        ipm=IpmConfig(),
        seed=seed,
        faults=faults,
    ))


class TestScheduleDeterminism:
    def test_same_seed_same_plan_identical_schedule(self):
        a = _run(CHAOS)
        b = _run(CHAOS)
        assert a.faults.events  # the chaos plan actually fired
        assert a.faults.schedule_key() == b.faults.schedule_key()
        assert a.faults.events == b.faults.events

    def test_same_seed_same_plan_identical_outputs(self):
        a = _run(CHAOS)
        b = _run(CHAOS)
        assert a.wallclock == b.wallclock
        assert banner(a.report) == banner(b.report)

    def test_different_seed_different_schedule(self):
        a = _run(CHAOS, seed=11)
        b = _run(CHAOS, seed=12)
        assert a.faults.schedule_key() != b.faults.schedule_key()


class TestDisabledPlansAreFree:
    def test_disabled_and_empty_plans_match_no_plan_exactly(self):
        base = _run(faults=None)
        empty = _run(faults=FaultPlan())
        disabled = _run(faults=FaultPlan(enabled=False, cuda=CHAOS.cuda,
                                         mpi=CHAOS.mpi))
        assert base.wallclock == empty.wallclock == disabled.wallclock
        text = banner(base.report)
        assert banner(empty.report) == text
        assert banner(disabled.report) == text
        # no injector is even constructed for an inactive plan
        assert empty.faults is None
        assert disabled.faults is None

    def test_faulted_run_differs_from_baseline(self):
        """Sanity: the chaos plan is not a no-op."""
        base = _run(faults=None)
        chaotic = _run(CHAOS)
        assert chaotic.wallclock != pytest.approx(base.wallclock, rel=1e-9)
