"""The two-sweep differ: matching, statistics, verdicts, gating."""

import math

import pytest

from repro import FaultPlan, IpmConfig, JobSpec, NoiseConfig
from repro.analysis import diff_sweeps, format_diff, gate_metrics, noise_cv
from repro.analysis.diff import metric_direction, z_critical
from repro.faults.plan import NodeSlowdownSpec
from repro.sweep import SweepRunner

BASE = JobSpec(app="paratec", ntasks=4, app_params={"preset": "tiny"},
               ipm=IpmConfig())
SLOW_FAULT = FaultPlan(
    enabled=True, nodes=(NodeSlowdownSpec(multiplier=3.0, nodes=(1,)),)
)


def _run(*specs):
    return SweepRunner(mode="serial").run(list(specs))


class TestConfigIdentity:
    def test_config_hash_ignores_seed_and_faults(self):
        assert BASE.config_hash() == BASE.replace(seed=77).config_hash()
        assert BASE.config_hash() == \
            BASE.replace(faults=SLOW_FAULT).config_hash()
        ipm_faulted = BASE.replace(ipm=IpmConfig(faults=SLOW_FAULT))
        assert BASE.config_hash() == ipm_faulted.config_hash()

    def test_config_hash_tracks_real_config_changes(self):
        assert BASE.config_hash() != BASE.replace(ntasks=2).config_hash()
        assert BASE.config_hash() != \
            BASE.replace(app_params={"preset": "tiny",
                                     "iterations": 5}).config_hash()

    def test_summary_rows_carry_identity_and_noise_floor(self):
        sweep = _run(BASE.replace(noise=NoiseConfig()))
        (row,) = sweep.summary()["results"]
        assert row["config_hash"] == \
            BASE.replace(noise=NoiseConfig()).config_hash()
        assert row["noise_cv"] == pytest.approx(noise_cv(NoiseConfig()))


class TestDiffVerdicts:
    def test_injected_slowdown_is_a_confident_regression(self):
        baseline = _run(BASE).summary()
        current = _run(BASE.replace(faults=SLOW_FAULT)).summary()
        diff = diff_sweeps(baseline, current)
        assert diff.verdict == "regression"
        (delta,) = diff.deltas
        assert delta.verdict == "regression"
        assert delta.rel_delta > 0.5
        # the confidence bound is honest: a deterministic delta's lower
        # bound equals the point estimate
        assert delta.rel_delta_low == pytest.approx(delta.rel_delta)
        assert math.isinf(delta.z)
        assert "paratec" in delta.label

    def test_self_diff_is_ok_at_any_confidence(self):
        summary = _run(BASE, BASE.replace(seed=5)).summary()
        for confidence in (0.5, 0.95, 0.999999):
            diff = diff_sweeps(summary, summary, confidence=confidence)
            assert diff.verdict == "ok"
            assert all(d.verdict == "ok" for d in diff.deltas)
            assert all(d.delta == 0.0 for d in diff.deltas)

    def test_seeds_pool_into_one_sample_per_config(self):
        summary = _run(BASE, BASE.replace(seed=5),
                       BASE.replace(seed=9)).summary()
        diff = diff_sweeps(summary, summary)
        (delta,) = diff.deltas  # one config, three seeds
        assert delta.baseline_n == 3 and delta.current_n == 3

    def test_improvement_is_not_a_regression(self):
        slow = _run(BASE.replace(faults=SLOW_FAULT)).summary()
        fast = _run(BASE).summary()
        diff = diff_sweeps(slow, fast)
        assert diff.verdict == "ok"
        (delta,) = diff.deltas
        assert delta.verdict == "improvement"

    def test_unmatched_configs_are_surfaced_not_dropped(self):
        baseline = _run(BASE).summary()
        current = _run(BASE.replace(ntasks=2)).summary()
        diff = diff_sweeps(baseline, current)
        assert diff.deltas == ()
        assert len(diff.only_baseline) == 1
        assert len(diff.only_current) == 1

    def test_min_rel_delta_floors_tiny_confident_deltas(self):
        base = {"results": [{"app": "a", "ntasks": 1, "config_hash": "k",
                             "status": "ok", "wallclock": 100.0}]}
        cur = {"results": [{"app": "a", "ntasks": 1, "config_hash": "k",
                            "status": "ok", "wallclock": 100.5}]}
        # a certain 0.5% slowdown stays under the default 1% floor ...
        assert diff_sweeps(base, cur).verdict == "ok"
        # ... but trips a tighter one
        assert diff_sweeps(base, cur, min_rel_delta=0.001).verdict == \
            "regression"

    def test_noise_floor_softens_single_run_verdicts(self):
        rows = lambda wall, cv: {"results": [
            {"app": "a", "ntasks": 1, "config_hash": "k", "status": "ok",
             "wallclock": wall, "noise_cv": cv}
        ]}
        # 3% slower: a certain regression without noise ...
        assert diff_sweeps(rows(100.0, 0.0),
                           rows(103.0, 0.0)).verdict == "regression"
        # ... but indistinguishable under a 5%-cv noise model
        assert diff_sweeps(rows(100.0, 0.05),
                           rows(103.0, 0.05)).verdict == "ok"

    def test_failed_rows_are_excluded_from_samples(self):
        base = {"results": [
            {"app": "a", "ntasks": 1, "config_hash": "k", "status": "ok",
             "wallclock": 10.0},
            {"app": "a", "ntasks": 1, "config_hash": "k",
             "status": "crashed", "wallclock": 0.0},
        ]}
        diff = diff_sweeps(base, base)
        (delta,) = diff.deltas
        assert delta.baseline_n == 1

    def test_old_summaries_fall_back_to_coarse_keys(self):
        row = {"app": "hpl", "ntasks": 4, "status": "ok", "wallclock": 5.0}
        diff = diff_sweeps({"results": [row]}, {"results": [dict(row)]})
        (delta,) = diff.deltas
        assert delta.key == "hpl:x4"

    def test_rejects_non_summary_input(self):
        with pytest.raises(ValueError, match="sweep summary"):
            diff_sweeps({"nope": 1}, {"results": []})


class TestStatistics:
    def test_z_critical_monotone(self):
        assert z_critical(0.95) == pytest.approx(1.6449, abs=1e-3)
        assert z_critical(0.99) > z_critical(0.95)
        with pytest.raises(ValueError):
            z_critical(1.0)

    def test_noise_cv_composition(self):
        quiet = NoiseConfig(jitter_mean=0.0, daemon_rate=0.0,
                            run_bias_sd=0.01)
        assert noise_cv(quiet) == pytest.approx(0.01)
        louder = NoiseConfig(jitter_mean=0.0, daemon_rate=0.0,
                             run_bias_sd=0.02)
        assert noise_cv(louder) > noise_cv(quiet)


class TestMetricGate:
    BASE = {"schema": "ipm-repro/bench-overhead/v3",
            "monitored_events_per_sec": 100000.0,
            "overhead_us_per_event": 2.0,
            "platform": "x"}

    def test_throughput_drop_beyond_tolerance_regresses(self):
        cur = dict(self.BASE, monitored_events_per_sec=70000.0)
        diff = gate_metrics(cur, self.BASE, tolerance=0.20)
        assert diff.verdict == "regression"
        (delta,) = diff.deltas
        assert delta.metric == "monitored_events_per_sec"
        assert delta.current_mean == 70000.0  # un-normalized means
        assert delta.rel_delta > 0.20  # badness fraction

    def test_drop_within_tolerance_passes(self):
        cur = dict(self.BASE, monitored_events_per_sec=90000.0)
        assert gate_metrics(cur, self.BASE, tolerance=0.20).verdict == "ok"

    def test_latency_metrics_need_explicit_opt_in(self):
        cur = dict(self.BASE, overhead_us_per_event=10.0)
        # default selection gates only higher-is-better keys
        auto = gate_metrics(cur, self.BASE, tolerance=0.20)
        assert [d.metric for d in auto.deltas] == \
            ["monitored_events_per_sec"]
        explicit = gate_metrics(cur, self.BASE, tolerance=0.20,
                                metrics=["overhead_us_per_event"])
        assert explicit.verdict == "regression"

    def test_direction_inference(self):
        assert metric_direction("monitored_events_per_sec") == "higher"
        assert metric_direction("cache_speedup") == "higher"
        assert metric_direction("overhead_us_per_event") == "lower"
        assert metric_direction("platform") is None

    def test_non_numeric_named_metric_rejected(self):
        with pytest.raises(ValueError, match="not numeric"):
            gate_metrics(self.BASE, self.BASE, metrics=["platform"])

    def test_self_gate_passes(self):
        assert gate_metrics(self.BASE, self.BASE).verdict == "ok"


class TestRenderer:
    def test_format_diff_names_the_regressed_config(self):
        baseline = _run(BASE).summary()
        current = _run(BASE.replace(faults=SLOW_FAULT)).summary()
        text = format_diff(diff_sweeps(baseline, current))
        assert "REGRESSION" in text
        assert "paratec x4" in text
        assert "95%" in text
        assert "1 regression(s)" in text
