"""`python -m repro analyze` — CLI contract, exit codes, output writer."""

import json

import pytest

from repro import FaultPlan, IpmConfig, JobSpec, run_job
from repro.__main__ import (
    EXIT_BAD_INPUT,
    EXIT_EMPTY,
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_SPEC_FAILURES,
    main,
)
from repro.analysis import ANALYSIS_SCHEMA, from_document
from repro.faults.plan import NodeSlowdownSpec
from repro.sweep import SweepRunner

BASE = JobSpec(app="paratec", ntasks=4, app_params={"preset": "tiny"},
               ipm=IpmConfig())
SLOW_FAULT = FaultPlan(
    enabled=True, nodes=(NodeSlowdownSpec(multiplier=3.0, nodes=(1,)),)
)


def _summary_file(tmp_path, name, *specs):
    summary = SweepRunner(mode="serial").run(list(specs)).summary()
    path = tmp_path / name
    path.write_text(json.dumps(summary))
    return str(path)


class TestExitCodeContract:
    def test_codes_are_pinned_and_distinct(self):
        assert (EXIT_OK, EXIT_BAD_INPUT, EXIT_EMPTY, EXIT_SPEC_FAILURES,
                EXIT_REGRESSION) == (0, 2, 3, 4, 5)


class TestAnalyzeReport:
    @pytest.fixture()
    def xml(self, tmp_path):
        from repro.core import write_xml

        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        path = tmp_path / "profile.xml"
        write_xml(res.report, str(path))
        return str(path)

    def test_text_report_names_the_bottleneck(self, xml, capsys):
        assert main(["analyze", "report", xml]) == EXIT_OK
        assert "kernel-bound" in capsys.readouterr().out

    def test_json_report_is_a_schema_stamped_document(self, xml, capsys):
        assert main(["analyze", "report", xml, "--json"]) == EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == ANALYSIS_SCHEMA
        sdiag = from_document(doc)
        (diag,) = sdiag.diagnoses
        assert diag.verdict == "kernel-bound"
        assert diag.job == xml

    def test_out_flag_writes_the_same_payload(self, xml, tmp_path, capsys):
        out = tmp_path / "diag.json"
        assert main(["analyze", "report", xml, "--json",
                     "--out", str(out)]) == EXIT_OK
        assert capsys.readouterr().out == ""
        assert json.loads(out.read_text())["schema"] == ANALYSIS_SCHEMA

    def test_garbage_xml_is_bad_input(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-ipm/>")
        assert main(["analyze", "report", str(bad)]) == EXIT_BAD_INPUT


class TestAnalyzeDiff:
    def test_injected_slowdown_exits_5_and_names_the_spec(
            self, tmp_path, capsys):
        baseline = _summary_file(tmp_path, "base.json", BASE)
        current = _summary_file(tmp_path, "cur.json",
                                BASE.replace(faults=SLOW_FAULT))
        assert main(["analyze", "diff", baseline, current]) == \
            EXIT_REGRESSION
        printed = capsys.readouterr().out
        assert "REGRESSION" in printed
        assert "paratec x4" in printed
        assert "95%" in printed  # the confidence bound is part of the story

    def test_self_diff_exits_0_at_any_confidence(self, tmp_path):
        summary = _summary_file(tmp_path, "s.json", BASE,
                                BASE.replace(seed=5))
        for confidence in ("0.5", "0.95", "0.999999"):
            assert main(["analyze", "diff", summary, summary,
                         "--confidence", confidence]) == EXIT_OK

    def test_json_document_round_trips(self, tmp_path, capsys):
        summary = _summary_file(tmp_path, "s.json", BASE)
        assert main(["analyze", "diff", summary, summary,
                     "--json"]) == EXIT_OK
        diff = from_document(json.loads(capsys.readouterr().out))
        assert diff.verdict == "ok"

    def test_disjoint_sweeps_are_empty(self, tmp_path):
        a = _summary_file(tmp_path, "a.json", BASE)
        b = _summary_file(tmp_path, "b.json", BASE.replace(ntasks=2))
        assert main(["analyze", "diff", a, b]) == EXIT_EMPTY

    def test_non_summary_input_is_bad(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a summary"}))
        good = _summary_file(tmp_path, "good.json", BASE)
        assert main(["analyze", "diff", str(bad), good]) == EXIT_BAD_INPUT
        assert main(["analyze", "diff", str(tmp_path / "nope.json"),
                     good]) == EXIT_BAD_INPUT


class TestAnalyzeGate:
    BENCH = {"schema": "ipm-repro/bench-overhead/v3",
             "monitored_events_per_sec": 100000.0,
             "overhead_us_per_event": 2.0}

    def _bench_file(self, tmp_path, name, **overrides):
        path = tmp_path / name
        path.write_text(json.dumps(dict(self.BENCH, **overrides)))
        return str(path)

    def test_missing_baseline_passes(self, tmp_path, capsys):
        current = self._bench_file(tmp_path, "cur.json")
        assert main(["analyze", "gate", current, "--baseline",
                     str(tmp_path / "absent.json")]) == EXIT_OK
        assert "first run passes" in capsys.readouterr().out

    def test_throughput_regression_exits_5(self, tmp_path):
        baseline = self._bench_file(tmp_path, "base.json")
        current = self._bench_file(tmp_path, "cur.json",
                                   monitored_events_per_sec=50000.0)
        assert main(["analyze", "gate", current,
                     "--baseline", baseline]) == EXIT_REGRESSION

    def test_within_tolerance_passes(self, tmp_path):
        baseline = self._bench_file(tmp_path, "base.json")
        current = self._bench_file(tmp_path, "cur.json",
                                   monitored_events_per_sec=90000.0)
        assert main(["analyze", "gate", current,
                     "--baseline", baseline]) == EXIT_OK

    def test_sweep_summaries_gate_through_the_differ(self, tmp_path):
        baseline = _summary_file(tmp_path, "base.json", BASE)
        current = _summary_file(tmp_path, "cur.json",
                                BASE.replace(faults=SLOW_FAULT))
        assert main(["analyze", "gate", current, "--baseline", baseline,
                     "--tolerance", "0.10"]) == EXIT_REGRESSION
        assert main(["analyze", "gate", baseline,
                     "--baseline", baseline]) == EXIT_OK

    def test_mixed_kinds_are_bad_input(self, tmp_path):
        sweep = _summary_file(tmp_path, "sweep.json", BASE)
        bench = self._bench_file(tmp_path, "bench.json")
        assert main(["analyze", "gate", bench,
                     "--baseline", sweep]) == EXIT_BAD_INPUT

    def test_named_metric_selection(self, tmp_path):
        baseline = self._bench_file(tmp_path, "base.json")
        current = self._bench_file(tmp_path, "cur.json",
                                   overhead_us_per_event=10.0)
        # latency keys are not gated by default ...
        assert main(["analyze", "gate", current,
                     "--baseline", baseline]) == EXIT_OK
        # ... but explicit opt-in gates them with the right direction
        assert main(["analyze", "gate", current, "--baseline", baseline,
                     "--metric", "overhead_us_per_event"]) == \
            EXIT_REGRESSION

    def test_nothing_comparable_is_empty(self, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps({"platform": "x"}))
        assert main(["analyze", "gate", str(a),
                     "--baseline", str(a)]) == EXIT_EMPTY


class TestSharedOutputWriter:
    """`report --json` and `analyze` share one writer + schema stamp."""

    def test_report_json_carries_the_shared_schema(self, tmp_path, capsys):
        from repro.core import write_xml

        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        assert main(["report", str(xml), "--json"]) == EXIT_OK
        summary = json.loads(capsys.readouterr().out)
        assert summary["schema"] == ANALYSIS_SCHEMA

    def test_report_supports_out_like_analyze(self, tmp_path, capsys):
        from repro.core import write_xml

        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        out = tmp_path / "summary.json"
        assert main(["report", str(xml), "--json",
                     "--out", str(out)]) == EXIT_OK
        assert capsys.readouterr().out == ""
        assert json.loads(out.read_text())["ntasks"] == 1

    def test_text_out_is_newline_terminated(self, tmp_path):
        from repro.core import write_xml

        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        out = tmp_path / "banner.txt"
        assert main(["report", str(xml), "--out", str(out)]) == EXIT_OK
        assert out.read_text().endswith("\n")
