"""The versioned analysis result types: invariants + JSON round-trips."""

import json

import pytest

from repro.analysis import (
    ANALYSIS_SCHEMA,
    BOTTLENECKS,
    DELTA_VERDICTS,
    FINDING_KINDS,
    SEVERITIES,
    Diagnosis,
    EnsembleComparison,
    EnsembleStats,
    Finding,
    SpecDelta,
    SweepDiagnosis,
    SweepDiff,
    from_document,
    to_document,
)


def _finding(**overrides):
    kw = dict(kind="straggler", severity="warning", message="rank 3 slow",
              target="rank:3", metrics={"z": 6.5, "active": 2.0})
    kw.update(overrides)
    return Finding(**kw)


def _delta(**overrides):
    kw = dict(key="abc", label="hpl x2", metric="wallclock",
              baseline_n=3, baseline_mean=10.0, baseline_std=0.1,
              current_n=3, current_mean=12.0, current_std=0.1,
              delta=2.0, rel_delta=0.2, z=12.0, rel_delta_low=0.15,
              verdict="regression")
    kw.update(overrides)
    return SpecDelta(**kw)


class TestVocabularies:
    def test_finding_rejects_unknown_kind_and_severity(self):
        with pytest.raises(ValueError, match="finding kind"):
            _finding(kind="vibe")
        with pytest.raises(ValueError, match="severity"):
            _finding(severity="catastrophic")

    def test_diagnosis_rejects_unknown_verdict(self):
        with pytest.raises(ValueError, match="verdict"):
            Diagnosis(job="j", verdict="gpu-sad", ntasks=1, wallclock=1.0)

    def test_delta_rejects_unknown_verdict(self):
        with pytest.raises(ValueError, match="delta verdict"):
            _delta(verdict="meh")

    def test_vocabularies_are_pinned(self):
        assert "kernel-bound" in BOTTLENECKS and "inconclusive" in BOTTLENECKS
        assert DELTA_VERDICTS == ("ok", "regression", "improvement",
                                  "indeterminate")
        assert SEVERITIES == ("info", "warning", "critical")
        assert "straggler" in FINDING_KINDS and "regression" in FINDING_KINDS


class TestFrozenInvariants:
    def test_metrics_are_name_sorted_pairs(self):
        f = _finding(metrics={"z": 1.0, "active": 2.0})
        assert f.metrics == (("active", 2.0), ("z", 1.0))
        assert f.metric("z") == 1.0
        assert f.metric("absent") is None
        assert f.metrics_dict() == {"active": 2.0, "z": 1.0}

    def test_duplicate_metric_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            _finding(metrics=(("z", 1.0), ("z", 2.0)))

    def test_finding_is_frozen_and_hashable(self):
        f = _finding()
        with pytest.raises(AttributeError):
            f.kind = "note"
        assert f in {f}

    def test_equal_findings_encode_identically(self):
        a = _finding(metrics={"z": 6.5, "active": 2.0})
        b = _finding(metrics=(("active", 2.0), ("z", 6.5)))
        assert a == b
        assert json.dumps(to_document(a), sort_keys=True) == \
            json.dumps(to_document(b), sort_keys=True)

    def test_sweep_diff_validates_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            SweepDiff(deltas=(), confidence=1.5, min_rel_delta=0.01)
        with pytest.raises(ValueError, match="min_rel_delta"):
            SweepDiff(deltas=(), confidence=0.95, min_rel_delta=-0.1)


class TestDocuments:
    def test_round_trip_every_engine_type(self):
        diag = Diagnosis(
            job="hpl x2", verdict="kernel-bound", ntasks=2, wallclock=4.0,
            breakdown={"kernel": 0.6, "transfer": 0.1},
            findings=(_finding(),),
        )
        objects = [
            _finding(),
            diag,
            SweepDiagnosis(diagnoses=(diag,), findings=(_finding(),)),
            _delta(),
            SweepDiff(deltas=(_delta(),), confidence=0.95,
                      min_rel_delta=0.01, only_baseline=("x",)),
        ]
        for obj in objects:
            doc = to_document(obj)
            assert doc["schema"] == ANALYSIS_SCHEMA
            # through real JSON text, not just dict identity
            back = from_document(json.loads(json.dumps(doc)))
            assert back == obj

    def test_registered_helper_types_round_trip_too(self):
        cmp = EnsembleComparison(
            with_ipm=EnsembleStats(n=2, mean=2.0, std=0.1, vmin=1.9, vmax=2.1),
            without_ipm=EnsembleStats(n=2, mean=1.0, std=0.1, vmin=0.9,
                                      vmax=1.1),
            dilatation=1.0,
        )
        assert from_document(json.loads(json.dumps(to_document(cmp)))) == cmp

    def test_document_validation(self):
        with pytest.raises(TypeError, match="analysis result"):
            to_document({"not": "a dataclass"})
        with pytest.raises(ValueError, match="schema"):
            from_document({"schema": "ipm-repro/analysis/v999",
                           "payload": {}})
        with pytest.raises(ValueError, match="payload"):
            from_document({"schema": ANALYSIS_SCHEMA})
        with pytest.raises(ValueError, match="not an analysis result"):
            from_document({"schema": ANALYSIS_SCHEMA, "payload": {"x": 1}})

    def test_diagnosis_accessors(self):
        d = Diagnosis(
            job="j", verdict="transfer-bound", ntasks=4, wallclock=2.0,
            breakdown={"transfer": 0.7, "kernel": 0.1},
            findings=(_finding(),
                      _finding(kind="load_imbalance", target="")),
        )
        assert d.fraction("transfer") == 0.7
        assert d.fraction("network") == 0.0
        assert len(d.stragglers) == 1

    def test_sweep_diff_verdict_and_findings(self):
        ok = SweepDiff(deltas=(_delta(verdict="ok"),), confidence=0.95,
                       min_rel_delta=0.01)
        assert ok.verdict == "ok" and not ok.has_regression
        assert ok.findings() == ()
        bad = SweepDiff(deltas=(_delta(),), confidence=0.95,
                        min_rel_delta=0.01)
        assert bad.verdict == "regression"
        (f,) = bad.findings()
        assert f.kind == "regression" and f.severity == "critical"
        assert "95% confidence" in f.message
        assert f.metric("rel_delta_low") == 0.15

    def test_sweep_diagnosis_ok_property(self):
        quiet = SweepDiagnosis(diagnoses=(
            Diagnosis(job="j", verdict="kernel-bound", ntasks=1,
                      wallclock=1.0,
                      findings=(_finding(kind="bottleneck",
                                         severity="info"),)),
        ))
        assert quiet.ok
        noisy = SweepDiagnosis(findings=(_finding(kind="failed_spec",
                                                  severity="critical"),))
        assert not noisy.ok
        assert quiet.verdict_counts() == {"kernel-bound": 1}
