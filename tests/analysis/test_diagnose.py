"""Seeded end-to-end acceptance tests for the diagnosis engine."""

import pytest

from repro import FaultPlan, IpmConfig, JobSpec
from repro.analysis import (
    analyze_job,
    analyze_sweep,
    classify,
    component_times,
    detect_stragglers,
    format_diagnosis,
    format_sweep_diagnosis,
)
from repro.faults.plan import NodeSlowdownSpec, RankAbortSpec
from repro.sweep import SweepRunner

#: hpl with the host work stripped: virtually all time is the GPU
#: update kernels (the host waits in cudaEventSynchronize).
KERNEL_HEAVY_HPL = {
    "preset": "tiny",
    "gpu_update_total": 2.0,
    "cpu_panel_total": 0.05,
    "overlap_fraction": 0.0,
    "step_host_overhead": 0.0,
}

#: paratec with the host FFT work cut down: the thunked CUBLAS
#: transfers (SetMatrix/GetMatrix around a tiny-k zgemm) dominate.
TRANSFER_HEAVY_PARATEC = {
    "preset": "tiny",
    "fft_parallel_seconds": 0.4,
    "fft_serial_seconds": 0.0,
}


def _run(*specs):
    return SweepRunner(mode="serial").run(list(specs))


class TestClassification:
    def test_hpl_kernel_heavy_classifies_kernel_bound(self):
        sweep = _run(JobSpec(app="hpl", ntasks=2,
                             app_params=KERNEL_HEAVY_HPL, ipm=IpmConfig()))
        (diag,) = analyze_sweep(sweep).diagnoses
        assert diag.verdict == "kernel-bound"
        assert diag.fraction("kernel") > diag.fraction("transfer")
        assert diag.fraction("kernel") > diag.fraction("host_compute")

    def test_paratec_transfer_heavy_classifies_transfer_bound(self):
        sweep = _run(JobSpec(app="paratec", ntasks=2,
                             app_params=TRANSFER_HEAVY_PARATEC,
                             ipm=IpmConfig()))
        (diag,) = analyze_sweep(sweep).diagnoses
        assert diag.verdict == "transfer-bound"
        assert diag.fraction("transfer") > 0.5

    def test_host_heavy_paratec_classifies_cpu_bound(self):
        sweep = _run(JobSpec(app="paratec", ntasks=2,
                             app_params={"preset": "tiny"}, ipm=IpmConfig()))
        (diag,) = analyze_sweep(sweep).diagnoses
        assert diag.verdict == "cpu-bound"

    def test_classify_is_mechanical(self):
        assert classify({"kernel": 0.7, "transfer": 0.1}) == "kernel-bound"
        assert classify({"transfer": 0.6, "kernel": 0.2}) == "transfer-bound"
        assert classify({"network": 0.5}) == "network-bound"
        assert classify({"host_compute": 0.9}) == "cpu-bound"
        # idle only wins through its excess over kernel time
        assert classify({"host_idle": 0.5, "kernel": 0.45}) == "kernel-bound"
        assert classify({"host_idle": 0.6, "kernel": 0.1}) == "host-idle-bound"
        assert classify({"kernel": 0.1, "transfer": 0.1}) == "inconclusive"

    def test_breakdown_components_are_complete(self):
        sweep = _run(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        (result,) = sweep
        (task,) = result.report.tasks
        comp = component_times(task, result.report.domains)
        assert set(comp) == {"host_compute", "host_idle", "kernel",
                             "network", "transfer"}
        assert comp["kernel"] > 0.0

    def test_bottleneck_finding_carries_the_headline(self):
        sweep = _run(JobSpec(app="hpl", ntasks=2,
                             app_params=KERNEL_HEAVY_HPL, ipm=IpmConfig()))
        (diag,) = analyze_sweep(sweep).diagnoses
        (bn,) = [f for f in diag.findings if f.kind == "bottleneck"]
        assert bn.severity == "info"
        assert "kernel-bound" in bn.message


class TestStragglers:
    def test_fault_induced_straggler_is_flagged(self):
        # one slowed node in a collective-synchronized job: wallclocks
        # equalize, but active time (wall - MPI) exposes the victim.
        fault = FaultPlan(enabled=True,
                          nodes=(NodeSlowdownSpec(multiplier=3.0,
                                                  nodes=(1,)),))
        sweep = _run(JobSpec(app="paratec", ntasks=4,
                             app_params={"preset": "tiny"},
                             ipm=IpmConfig(), faults=fault))
        (diag,) = analyze_sweep(sweep).diagnoses
        stragglers = diag.stragglers
        assert len(stragglers) == 1
        (s,) = stragglers
        assert s.target == "rank:1"
        assert s.severity == "warning"
        assert s.metric("z") > 4.0
        assert s.metric("active") > s.metric("median")
        # the wide spread also surfaces as load imbalance
        assert any(f.kind == "load_imbalance" for f in diag.findings)

    def test_clean_run_has_no_stragglers(self):
        sweep = _run(JobSpec(app="paratec", ntasks=4,
                             app_params={"preset": "tiny"},
                             ipm=IpmConfig()))
        (diag,) = analyze_sweep(sweep).diagnoses
        assert diag.stragglers == ()

    def test_single_rank_job_cannot_straggle(self):
        sweep = _run(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        (result,) = sweep
        assert detect_stragglers(result.report) == ()

    def test_noise_model_widens_the_threshold(self):
        # a deviation that is wildly significant under zero noise must
        # shrink in z when the noise model claims large variance.
        from repro.analysis.diff import noise_cv
        from repro.simt.noise import NoiseConfig

        loud = NoiseConfig(run_bias_sd=0.5)
        assert noise_cv(loud) > noise_cv(NoiseConfig())
        assert noise_cv(None) == 0.0
        assert noise_cv(NoiseConfig(enabled=False)) == 0.0


class TestSweepLevel:
    def test_partial_report_becomes_failed_ranks_finding(self):
        fault = FaultPlan(enabled=True,
                          aborts=(RankAbortSpec(rank=0, at=0.5),))
        sweep = _run(JobSpec(app="square", ntasks=2,
                             ipm=IpmConfig(faults=fault)))
        sdiag = analyze_sweep(sweep)
        (diag,) = sdiag.diagnoses
        assert not diag.complete
        (f,) = [f for f in diag.findings if f.kind == "failed_ranks"]
        assert f.severity == "critical"
        assert "rank 0 aborted" in f.message
        assert not sdiag.ok

    def test_failed_spec_becomes_critical_finding(self):
        from repro.sweep.report import SweepReport, SweepResult

        spec = JobSpec(app="square", ntasks=1, ipm=IpmConfig())
        failed = SweepResult(
            spec=spec, spec_hash=spec.content_hash(), report=None,
            wallclock=0.0, events_executed=0, from_cache=False,
            status="crashed", error="boom",
        )
        sdiag = analyze_sweep(SweepReport(results=[failed]))
        assert sdiag.diagnoses == ()
        (f,) = sdiag.findings
        assert f.kind == "failed_spec" and f.severity == "critical"
        assert "crashed" in f.message and "boom" in f.message
        assert not sdiag.ok

    def test_unmonitored_spec_becomes_note(self):
        sweep = _run(JobSpec(app="square", ntasks=1))  # no ipm
        sdiag = analyze_sweep(sweep)
        assert sdiag.diagnoses == ()
        (note,) = sdiag.findings
        assert note.kind == "note" and "unmonitored" in note.message

    def test_renderers_produce_text(self):
        sweep = _run(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        sdiag = analyze_sweep(sweep)
        text = format_sweep_diagnosis(sdiag)
        assert "kernel-bound" in text
        assert "breakdown:" in format_diagnosis(sdiag.diagnoses[0])

    def test_deterministic_across_runs(self):
        spec = JobSpec(app="hpl", ntasks=2, app_params=KERNEL_HEAVY_HPL,
                       ipm=IpmConfig())
        a = analyze_sweep(_run(spec))
        b = analyze_sweep(_run(spec))
        assert a == b

    def test_analyze_job_label_and_completeness(self):
        sweep = _run(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        (result,) = sweep
        diag = analyze_job(result.report, label="my-job")
        assert diag.job == "my-job"
        assert diag.complete
