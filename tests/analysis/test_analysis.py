"""Tests for the analysis helpers."""

import pytest

from repro.analysis import (
    LEGACY_HELPER_TO_API,
    Comparison,
    EnsembleStats,
    ScalingPoint,
    ascii_histogram,
    compare_ensembles,
    ensemble_stats,
    format_comparisons,
    format_scaling,
    format_table,
    scaling_speedups,
)
from repro.analysis.scaling import speedup


class TestTables:
    def test_alignment_and_floats(self):
        out = format_table(["name", "v"], [["a", 1.5], ["bbbb", 2.25]],
                           floatfmt=".2f")
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in out and "2.25" in out
        assert len({len(l) for l in lines[:2]}) >= 1

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table I")
        assert out.startswith("Table I\n")

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestEnsemble:
    def test_stats(self):
        s = EnsembleStats.of([1.0, 2.0, 3.0])
        assert s.n == 3 and s.mean == 2.0
        assert s.vmin == 1.0 and s.vmax == 3.0
        assert s.std == pytest.approx(1.0)

    def test_single_value_std_zero(self):
        assert EnsembleStats.of([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnsembleStats.of([])

    def test_dilatation(self):
        cmp = compare_ensembles([101.0, 103.0], [100.0, 102.0])
        assert cmp.dilatation == pytest.approx(1.0 / 101.0)
        assert cmp.with_ipm.mean == 102.0 and cmp.without_ipm.mean == 101.0

    def test_histogram_renders(self):
        out = ascii_histogram([1, 1, 2, 2, 2, 3], bins=3, label="runs")
        assert out.startswith("runs")
        assert out.count("|") == 3
        assert "#" in out

    def test_histogram_shared_range(self):
        a = ascii_histogram([1.0, 2.0], bins=2, lo=0.0, hi=4.0)
        assert "0.000" in a and "4.000" in a


class TestScaling:
    def test_format(self):
        pts = [
            ScalingPoint(64, 500.0, {"MPI": 20.0}),
            ScalingPoint(32, 1000.0, {"MPI": 10.0}),
        ]
        out = format_scaling(pts, ["MPI"])
        lines = out.splitlines()
        assert lines[2].split()[0] == "32"  # sorted by procs
        assert "MPI[s/rank]" in lines[0]

    def test_speedup(self):
        pts = [ScalingPoint(32, 1000.0), ScalingPoint(128, 250.0)]
        s = scaling_speedups(pts)
        assert s[32] == 1.0 and s[128] == 4.0


class TestLegacyShims:
    """The pre-consolidation names keep working behind warnings."""

    def test_mapping_is_published(self):
        assert LEGACY_HELPER_TO_API == {
            "ensemble_stats": "compare_ensembles",
            "sweep_scaling": "scaling_series",
            "speedup": "scaling_speedups",
        }

    def test_ensemble_stats_shim_warns_and_keeps_tuple_shape(self):
        with pytest.warns(DeprecationWarning, match="compare_ensembles"):
            s_w, s_wo, d = ensemble_stats([101.0, 103.0], [100.0, 102.0])
        assert isinstance(s_w, EnsembleStats)
        assert d == pytest.approx(1.0 / 101.0)

    def test_speedup_shim_warns_and_matches_canonical(self):
        pts = [ScalingPoint(32, 1000.0), ScalingPoint(128, 250.0)]
        with pytest.warns(DeprecationWarning, match="scaling_speedups"):
            legacy = speedup(pts)
        assert legacy == scaling_speedups(pts)

    def test_sweep_scaling_shim_warns_and_returns_list(self):
        from repro import IpmConfig, JobSpec
        from repro.analysis import scaling_series, sweep_scaling
        from repro.sweep import SweepRunner

        report = SweepRunner(mode="serial").run(
            [JobSpec(app="square", ntasks=1, ipm=IpmConfig())]
        )
        with pytest.warns(DeprecationWarning, match="scaling_series"):
            legacy = sweep_scaling(report)
        assert isinstance(legacy, list)
        assert legacy == list(scaling_series(report))


class TestCompare:
    def test_rel_error_and_ok(self):
        c = Comparison("Fig8", "dilatation", paper=0.21, measured=0.25,
                       unit="%", rel_tol=0.5)
        assert c.rel_error == pytest.approx(0.1905, abs=1e-3)
        assert c.ok is True
        c2 = Comparison("x", "y", paper=1.0, measured=3.0, rel_tol=0.5)
        assert c2.ok is False

    def test_no_tol_is_informational(self):
        assert Comparison("x", "y", 1.0, 1.0).ok is None

    def test_zero_paper_value(self):
        assert Comparison("x", "y", 0.0, 0.0).rel_error == 0.0
        assert Comparison("x", "y", 0.0, 1.0).rel_error == float("inf")

    def test_format(self):
        out = format_comparisons(
            [Comparison("Table I", "scan diff", 1.22, 1.05, "%", 0.5)],
            title="cmp",
        )
        assert out.startswith("cmp")
        assert "OK" in out
