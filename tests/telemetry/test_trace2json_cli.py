"""The trace2json CLI contract: ``--from-jsonl`` mode and exit codes."""

import json

import pytest

from repro.telemetry.series import SamplePoint
from repro.telemetry.sinks import JSONL_SCHEMA, JsonlSink
from repro.telemetry.trace2json import (
    EXIT_BAD_INPUT,
    EXIT_EMPTY,
    EXIT_OK,
    load_jsonl_store,
    main,
)


def _write_jsonl(path, samples=3):
    """A well-formed telemetry JSONL file via the real sink."""
    sink = JsonlSink(path=str(path))
    sink.open({"command": "./xhpl.cuda", "ntasks": 2})
    for i in range(samples):
        t = 0.05 * (i + 1)
        sink.emit(
            t,
            [
                SamplePoint(t, "ipm_calls_total", (("rank", "0"),), 10.0 * i),
                SamplePoint(t, "node_power_watts",
                            (("node", "dirac01"),), 220.0),
            ],
        )
    sink.close()
    return path


class TestExitCodes:
    def test_missing_file_is_bad_input(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["--from-jsonl", str(tmp_path / "nope.jsonl"),
                   "--out", str(out)])
        assert rc == EXIT_BAD_INPUT
        assert "cannot read" in capsys.readouterr().err
        assert not out.exists()

    def test_malformed_line_is_bad_input(self, tmp_path, capsys):
        src = tmp_path / "bad.jsonl"
        src.write_text('{"kind": "meta", "schema": "%s"}\nnot json\n'
                       % JSONL_SCHEMA)
        rc = main(["--from-jsonl", str(src), "--out",
                   str(tmp_path / "trace.json")])
        assert rc == EXIT_BAD_INPUT
        err = capsys.readouterr().err
        assert f"{src}:2" in err and "not JSON" in err

    def test_wrong_schema_is_bad_input(self, tmp_path, capsys):
        src = tmp_path / "alien.jsonl"
        src.write_text('{"kind": "meta", "schema": "someone-elses/v9"}\n')
        rc = main(["--from-jsonl", str(src), "--out",
                   str(tmp_path / "trace.json")])
        assert rc == EXIT_BAD_INPUT
        assert "unknown schema" in capsys.readouterr().err

    def test_meta_only_file_is_empty(self, tmp_path, capsys):
        src = tmp_path / "empty.jsonl"
        _write_jsonl(src, samples=0)
        rc = main(["--from-jsonl", str(src), "--out",
                   str(tmp_path / "trace.json")])
        assert rc == EXIT_EMPTY
        assert "no samples" in capsys.readouterr().err

    def test_valid_file_converts_to_a_chrome_trace(self, tmp_path, capsys):
        src = _write_jsonl(tmp_path / "run.jsonl")
        out = tmp_path / "trace.json"
        rc = main(["--from-jsonl", str(src), "--out", str(out)])
        assert rc == EXIT_OK
        assert "wrote" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 6  # 3 samples x 2 series
        assert trace["otherData"]["schema"].startswith("ipm-repro/chrome-trace")
        assert trace["otherData"]["source"] == str(src)


class TestLoader:
    def test_roundtrips_series_and_points(self, tmp_path):
        src = _write_jsonl(tmp_path / "run.jsonl")
        store = load_jsonl_store(str(src))
        names = {s.name for s in store.series()}
        assert names == {"ipm_calls_total", "node_power_watts"}
        calls = next(s for s in store.series() if s.name == "ipm_calls_total")
        assert [v for _, v in calls.points] == [0.0, 10.0, 20.0]

    def test_unknown_kind_is_rejected_with_position(self, tmp_path):
        src = tmp_path / "odd.jsonl"
        src.write_text(
            '{"kind": "meta", "schema": "%s"}\n{"kind": "frobnicate"}\n'
            % JSONL_SCHEMA
        )
        with pytest.raises(ValueError, match=r"odd\.jsonl:2: unknown kind"):
            load_jsonl_store(str(src))

    def test_malformed_sample_is_rejected(self, tmp_path):
        src = tmp_path / "broken.jsonl"
        src.write_text(
            '{"kind": "sample", "t": "soon", "points": []}\n'
        )
        with pytest.raises(ValueError, match="malformed sample"):
            load_jsonl_store(str(src))

    def test_blank_lines_are_skipped(self, tmp_path):
        src = tmp_path / "gaps.jsonl"
        src.write_text(
            '\n{"kind": "sample", "t": 1.0, "points": '
            '[{"name": "x", "labels": {}, "value": 2.0}]}\n\n'
        )
        store = load_jsonl_store(str(src))
        assert len(list(store.series())) == 1
