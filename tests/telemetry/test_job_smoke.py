"""End-to-end telemetry smoke: tiny HPL with sampler + all three sinks.

Also pins the golden-output guarantee: enabling telemetry must not
change the simulated job or its banner by one byte.
"""

import json

from repro import IpmConfig, JobSpec, run_job
from repro.apps.hpl import HplConfig, hpl_app
from repro.core.banner import banner
from repro.telemetry.chrome_trace import job_to_chrome_trace, validate_chrome_trace
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.sinks import JSONL_SCHEMA


def _run_hpl(tmp_path, telemetry=True, trace_capacity=4096):
    # Stream ids are per-simulation (Simulator.next_id), so back-to-back
    # runs number @CUDA_EXEC_STRMxx identically without any pinning.
    tcfg = TelemetryConfig(
        enabled=telemetry,
        interval=0.050,
        sinks=("memory", "jsonl", "openmetrics"),
        jsonl_path=str(tmp_path / "telemetry.jsonl") if telemetry else None,
        openmetrics_path=str(tmp_path / "metrics.prom") if telemetry else None,
    )
    return run_job(JobSpec(
        app=lambda env: hpl_app(env, HplConfig.tiny()),
        ntasks=2,
        command="./xhpl.cuda",
        ipm=IpmConfig(trace_capacity=trace_capacity, telemetry=tcfg),
        seed=3,
    ))


def test_hpl_smoke_all_sinks_and_trace(tmp_path):
    result = _run_hpl(tmp_path)
    hub = result.telemetry
    assert hub is not None
    assert hub.ticks >= 2

    # memory sink: non-empty, sampled the headline series
    mem = hub.sink("memory")
    assert mem is not None and len(mem) > 0 and mem.closed
    names = {p.name for p in mem.points()}
    assert "gpu_busy_fraction" in names
    assert "ipm_host_idle_fraction" in names
    assert "node_gpu_busy_fraction" in names

    # JSONL sink: meta header + one well-formed line per tick
    lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
    assert len(lines) >= 3
    header = json.loads(lines[0])
    assert header["kind"] == "meta"
    assert header["schema"] == JSONL_SCHEMA
    assert header["command"] == "./xhpl.cuda"
    assert header["ntasks"] == 2
    ts = []
    for line in lines[1:]:
        rec = json.loads(line)
        assert rec["kind"] == "sample"
        ts.append(rec["t"])
    assert ts == sorted(ts)

    # OpenMetrics sink: exposition with the required series, terminated
    prom = (tmp_path / "metrics.prom").read_text()
    assert "# TYPE gpu_busy_fraction gauge" in prom
    assert 'gpu_busy_fraction{gpu="0"}' in prom
    assert "ipm_host_idle_fraction" in prom
    assert prom.endswith("# EOF\n")

    # Chrome trace from the same run validates
    trace = job_to_chrome_trace(result.report, hub.store)
    assert validate_chrome_trace(trace) == []

    # banner footer surfaces the trace ring fill (satellite: TraceRing.dropped)
    text = banner(result.report)
    footer = [l for l in text.splitlines() if l.startswith("# trace")]
    assert len(footer) == 1
    assert "recorded" in footer[0] and "dropped" in footer[0]


def test_telemetry_does_not_perturb_the_job(tmp_path):
    """Same seed, telemetry on vs off: byte-identical banner, same clock."""
    (tmp_path / "on").mkdir()
    on = _run_hpl(tmp_path / "on", trace_capacity=0, telemetry=True)
    off = _run_hpl(tmp_path / "off", trace_capacity=0, telemetry=False)
    assert on.wallclock == off.wallclock
    assert banner(on.report) == banner(off.report)
    assert on.telemetry is not None
    assert off.telemetry is None


def test_banner_has_no_trace_footer_without_tracing(tmp_path):
    result = _run_hpl(tmp_path, trace_capacity=0)
    text = banner(result.report)
    assert not any(l.startswith("# trace") for l in text.splitlines())
