"""Chrome-trace exporter: schema validity, flows, and determinism."""

import json

from repro.telemetry.chrome_trace import (
    job_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.trace2json import run_traced_job


def _trace(result):
    return job_to_chrome_trace(result.report, result.telemetry.store)


def test_exported_trace_passes_schema_validation():
    result = run_traced_job("square", 2, seed=5)
    trace = _trace(result)
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    assert any(e["ph"] == "X" for e in events)
    assert any(e["ph"] == "C" for e in events)
    assert trace["otherData"]["ranks"] == 2


def test_flow_events_pair_launches_with_kernels():
    result = run_traced_job("square", 1, seed=5)
    events = _trace(result)["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) >= 1
    assert len(starts) == len(finishes)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    fin_by_id = {e["id"]: e for e in finishes}
    for s in starts:
        f = fin_by_id[s["id"]]
        # host-side launch precedes (or coincides with) device execution,
        # which lives on a stream lane of the same rank process
        assert s["ts"] <= f["ts"]
        assert s["tid"] == 0
        assert f["tid"] >= 1
        assert s["pid"] == f["pid"]


def test_lanes_one_process_per_rank_one_thread_per_stream():
    result = run_traced_job("square", 2, seed=5)
    events = _trace(result)["traceEvents"]
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name" and e["pid"] < 900000
    }
    assert set(process_names) == {0, 1}
    assert all(name.startswith("rank ") for name in process_names.values())
    for pid in (0, 1):
        tids = {
            e["tid"]
            for e in events
            if e["ph"] == "X" and e["pid"] == pid
        }
        assert 0 in tids  # host lane
        assert any(t >= 1 for t in tids)  # at least one stream lane


def test_export_is_deterministic_across_runs(tmp_path):
    a = run_traced_job("square", 2, seed=7)
    b = run_traced_job("square", 2, seed=7)
    ja = json.dumps(_trace(a), sort_keys=True)
    jb = json.dumps(_trace(b), sort_keys=True)
    assert ja == jb
    pa = write_chrome_trace(a.report, str(tmp_path / "a.json"), a.telemetry.store)
    pb = write_chrome_trace(b.report, str(tmp_path / "b.json"), b.telemetry.store)
    assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
    assert json.loads((tmp_path / "a.json").read_text())["traceEvents"]
    assert pa != pb


def test_validator_flags_malformed_traces():
    assert validate_chrome_trace({}) == ["traceEvents missing or empty"]
    bad = {
        "traceEvents": [
            {"ph": "X", "ts": 2.0, "pid": 0, "tid": 0},  # no dur, no name
            {"ph": "s", "id": 7, "ts": 1.0, "pid": 0, "tid": 0},  # regress
            {"ph": "??", "ts": 3.0, "pid": 0},  # unknown phase, no tid
        ]
    }
    problems = validate_chrome_trace(bad)
    assert any("without valid dur" in p for p in problems)
    assert any("without name" in p for p in problems)
    assert any("< previous" in p for p in problems)
    assert any("unknown ph" in p for p in problems)
    assert any("missing 'tid'" in p for p in problems)
    assert any("start without finish" in p for p in problems)


def test_validator_catches_flow_ordering_and_duplicates():
    ev = lambda **kw: {"pid": 0, "tid": 0, "name": "l", **kw}  # noqa: E731
    trace = {
        "traceEvents": [
            ev(ph="f", id=1, ts=0.0),
            ev(ph="s", id=1, ts=1.0),
            ev(ph="s", id=2, ts=2.0),
            ev(ph="s", id=2, ts=3.0),
            ev(ph="f", id=2, ts=4.0),
        ]
    }
    problems = validate_chrome_trace(trace)
    assert any("finish before start" in p for p in problems)
    assert any("duplicate flow start" in p for p in problems)
