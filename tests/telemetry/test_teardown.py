"""Telemetry teardown is guaranteed: sinks flush even when the app dies."""

import json

import pytest

from repro.cluster import run_job
from repro.core import IpmConfig
from repro.simt import ProcessCrashed
from repro.telemetry.config import TelemetryConfig


def _tcfg(tmp_path):
    return TelemetryConfig(
        enabled=True,
        interval=0.010,
        sinks=("memory", "jsonl"),
        jsonl_path=str(tmp_path / "telemetry.jsonl"),
    )


def test_sinks_flushed_when_the_app_raises(tmp_path):
    def dying_app(env):
        env.hostcompute(0.05)  # let the sampler take a few samples
        raise RuntimeError("application bug")

    with pytest.raises(ProcessCrashed):
        run_job(dying_app, 2, ipm_config=IpmConfig(telemetry=_tcfg(tmp_path)))

    # the try/finally around the run loop still flushed + closed sinks:
    # the JSONL file is complete and well-formed despite the crash.
    lines = (tmp_path / "telemetry.jsonl").read_text().splitlines()
    assert lines, "jsonl sink never flushed"
    head = json.loads(lines[0])
    assert head["kind"] == "meta"
    kinds = {json.loads(l)["kind"] for l in lines[1:]}
    assert kinds == {"sample"}


def test_sinks_closed_on_the_clean_path_too(tmp_path):
    res = run_job(
        lambda env: env.hostcompute(0.05),
        1,
        ipm_config=IpmConfig(telemetry=_tcfg(tmp_path)),
    )
    mem = res.telemetry.sink("memory")
    assert mem.closed and len(mem) > 0
