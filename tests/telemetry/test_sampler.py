"""The virtual-time sampler: rates, rollups, and loop termination."""

from repro.cluster.node import Node
from repro.core.ipm import Ipm, IpmConfig
from repro.simt.simulator import Simulator
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.sampler import TelemetryHub


def _make(interval=0.01, sinks=("memory",)):
    sim = Simulator()
    tcfg = TelemetryConfig(enabled=True, interval=interval, sinks=sinks)
    ipm = Ipm(
        sim,
        config=IpmConfig(host_idle=False, telemetry=tcfg),
        blocking_calls=set(),
    )
    hub = TelemetryHub(sim, tcfg, meta={"command": "./a.out"})
    return sim, ipm, hub


def test_rates_are_deltas_of_monotonic_totals():
    _sim, ipm, hub = _make()
    hub.register_rank(0, ipm)
    hub.sample_now(0.0)  # baseline (dt == 0 -> zero rates)
    ipm.tele.events = 100
    ipm.tele.domain_time["MPI"] = 0.5
    ipm.tele.copy_bytes["H2D"] = 4096
    ipm.tele.launches = 10
    hub.sample_now(1.0)
    st = hub.store
    assert st.latest("ipm_events_per_sec", rank=0) == 100.0
    assert st.latest("ipm_mpi_fraction", rank=0) == 0.5
    assert st.latest("ipm_copy_h2d_bytes_per_sec", rank=0) == 4096.0
    assert st.latest("ipm_launches_per_sec", rank=0) == 10.0
    # next window only sees the *new* activity
    ipm.tele.events = 150
    hub.sample_now(2.0)
    assert st.latest("ipm_events_per_sec", rank=0) == 50.0


def test_gpu_and_node_rollups():
    sim, ipm, hub = _make()
    node = Node(sim, index=0)
    hub.register_rank(0, ipm, node)
    hub.sample_now(0.0)
    dev = node.devices[0]
    dev.compute.busy_time += 0.25
    dev.copy_bytes["h2d"] += 1024
    hub.sample_now(1.0)
    st = hub.store
    gpu = dev.device_id
    assert st.latest("gpu_busy_fraction", gpu=gpu) == 0.25
    assert st.latest("gpu_copy_h2d_bytes_per_sec", gpu=gpu) == 1024.0
    assert st.latest("node_gpu_busy_fraction", node=node.hostname) == 0.25
    assert st.latest("node_events_per_sec", node=node.hostname) == 0.0
    assert st.latest("ipm_hash_occupancy", rank=0) is not None


def test_tick_loop_terminates_with_the_job():
    sim, ipm, hub = _make(interval=0.01)
    hub.register_rank(0, ipm)

    def body():
        sim.sleep(0.105)

    proc = sim.spawn(body, name="app")
    hub.start(lambda: proc.alive)
    sim.run()  # must return: the sampler may not keep the heap alive
    assert not proc.alive
    assert 5 <= hub.ticks <= 12
    hub.finish()
    mem = hub.sink("memory")
    assert mem is not None and mem.closed
    assert len(mem) > 0


def test_finish_takes_closing_sample_and_is_idempotent():
    sim, ipm, hub = _make()
    hub.register_rank(0, ipm)
    hub.start()
    sim.run()  # nothing scheduled but the first tick; runs it and stops
    ticks_before = hub.ticks
    hub.finish()
    hub.finish()
    assert hub.ticks >= ticks_before
    assert hub.sink("memory").closed


def test_sinks_receive_open_metadata():
    _sim, ipm, hub = _make()
    hub.register_rank(0, ipm)
    hub.sample_now(0.0)
    mem = hub.sink("memory")
    assert mem.meta["command"] == "./a.out"
    assert mem.meta["schema"].startswith("ipm-repro/telemetry/")
    assert mem.meta["interval"] == hub.config.interval
