"""Sink implementations: memory ring, JSONL framing, OpenMetrics text."""

import json

import pytest

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.series import SamplePoint
from repro.telemetry.sinks import (
    JSONL_SCHEMA,
    METRIC_HELP,
    JsonlSink,
    MemorySink,
    OpenMetricsSink,
    escape_label_value,
    make_sinks,
)


def _pt(t, name, value, **labels):
    return SamplePoint(
        t, name, tuple(sorted((k, str(v)) for k, v in labels.items())), value
    )


def test_memory_sink_bounds_and_drop_count():
    sink = MemorySink(capacity=3)
    sink.open({"command": "./a.out"})
    sink.emit(0.0, [_pt(0.0, "x", 1.0, rank=0), _pt(0.0, "y", 2.0, rank=0)])
    sink.emit(1.0, [_pt(1.0, "x", 3.0, rank=0), _pt(1.0, "y", 4.0, rank=0)])
    assert sink.ticks == 2
    assert sink.emitted == 4
    assert len(sink) == 3
    assert sink.dropped == 1
    assert [p.value for p in sink.points()] == [2.0, 3.0, 4.0]
    assert sink.meta["command"] == "./a.out"
    sink.close()
    assert sink.closed


def test_memory_sink_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        MemorySink(capacity=0)


def test_jsonl_sink_framing(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    sink = JsonlSink(str(path))
    sink.open({"command": "./a.out", "ntasks": 2})
    sink.emit(0.01, [_pt(0.01, "x", 1.5, rank=0)])
    sink.emit(0.02, [])
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    header = json.loads(lines[0])
    assert header["kind"] == "meta"
    assert header["schema"] == JSONL_SCHEMA
    assert header["ntasks"] == 2
    sample = json.loads(lines[1])
    assert sample["kind"] == "sample"
    assert sample["points"] == [
        {"name": "x", "labels": {"rank": "0"}, "value": 1.5}
    ]
    assert json.loads(lines[2])["points"] == []
    # close is idempotent and text() mirrors the file
    sink.close()
    assert sink.text() == path.read_text()


def test_openmetrics_exposition(tmp_path):
    path = tmp_path / "metrics.prom"
    sink = OpenMetricsSink(str(path))
    sink.open({})
    sink.emit(0.5, [_pt(0.5, "gpu_busy_fraction", 0.25, gpu=0)])
    sink.emit(
        1.0,
        [
            _pt(1.0, "gpu_busy_fraction", 0.75, gpu=0),
            _pt(1.0, "ipm_events_per_sec", 123.0, rank=1),
        ],
    )
    text = sink.expose()
    assert "# TYPE gpu_busy_fraction gauge" in text
    # latest value wins, labels render in OpenMetrics syntax
    assert 'gpu_busy_fraction{gpu="0"} 0.75 1.000000' in text
    assert 'ipm_events_per_sec{rank="1"} 123 1.000000' in text
    assert text.endswith("# EOF\n")
    # families appear exactly once even with repeated emits
    assert text.count("# TYPE gpu_busy_fraction") == 1
    sink.close()
    assert path.read_text() == text


@pytest.mark.parametrize("raw, escaped", [
    ("plain", "plain"),
    ('say "hi"', 'say \\"hi\\"'),
    ("back\\slash", "back\\\\slash"),
    ("two\nlines", "two\\nlines"),
    ('\\"\n', '\\\\\\"\\n'),
])
def test_escape_label_value_per_openmetrics_spec(raw, escaped):
    assert escape_label_value(raw) == escaped


def test_openmetrics_format_pin(tmp_path):
    """Satellite pin: HELP precedes TYPE; label values are escaped."""
    sink = OpenMetricsSink(str(tmp_path / "m.prom"))
    sink.open({})
    sink.emit(0.5, [
        _pt(0.5, "gpu_busy_fraction", 0.25, gpu=0),
        _pt(0.5, "host_idle_fraction", 0.5, host='we"ird\\h\nost'),
    ])
    text = sink.expose()
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("# TYPE "):
            name = line.split()[2]
            if name in METRIC_HELP:
                assert lines[i - 1] == f"# HELP {name} {METRIC_HELP[name]}"
    assert "# HELP gpu_busy_fraction " in text
    assert 'host_idle_fraction{host="we\\"ird\\\\h\\nost"} 0.5' in text
    sink.close()


def test_make_sinks_from_config(tmp_path):
    cfg = TelemetryConfig(
        enabled=True,
        sinks=("memory", "jsonl", "openmetrics"),
        memory_capacity=7,
        jsonl_path=str(tmp_path / "t.jsonl"),
        openmetrics_path=str(tmp_path / "t.prom"),
    )
    sinks = make_sinks(cfg)
    assert [s.name for s in sinks] == ["memory", "jsonl", "openmetrics"]
    assert sinks[0].capacity == 7
    assert sinks[1].path == cfg.jsonl_path
    assert sinks[2].path == cfg.openmetrics_path


def test_config_validates_sink_names_and_interval():
    with pytest.raises(ValueError):
        TelemetryConfig(sinks=("carrier-pigeon",))
    with pytest.raises(ValueError):
        TelemetryConfig(interval=0.0)
    with pytest.raises(ValueError):
        TelemetryConfig(retention=0)
