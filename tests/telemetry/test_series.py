"""Time-series store: canonical labels, retention, deterministic order."""

import pytest

from repro.telemetry.series import (
    SamplePoint,
    TimeSeries,
    TimeSeriesStore,
    canon_labels,
)


def test_canon_labels_sorts_and_stringifies():
    assert canon_labels({"rank": 3, "app": "hpl"}) == (
        ("app", "hpl"),
        ("rank", "3"),
    )
    assert canon_labels(None) == ()
    assert canon_labels({}) == ()


def test_sample_point_label_dict():
    p = SamplePoint(1.0, "x", (("rank", "0"),), 2.0)
    assert p.label_dict() == {"rank": "0"}


def test_series_retention_evicts_oldest():
    s = TimeSeries("x", (), retention=3)
    for i in range(5):
        s.append(float(i), float(i * 10))
    assert len(s) == 3
    assert s.times() == [2.0, 3.0, 4.0]
    assert s.values() == [20.0, 30.0, 40.0]
    assert s.latest() == (4.0, 40.0)


def test_series_rejects_nonpositive_retention():
    with pytest.raises(ValueError):
        TimeSeries("x", (), retention=0)
    with pytest.raises(ValueError):
        TimeSeriesStore(retention=-1)


def test_store_record_get_latest():
    store = TimeSeriesStore(retention=16)
    store.record(0.0, "gpu_busy_fraction", {"gpu": 0}, 0.5)
    store.record(1.0, "gpu_busy_fraction", {"gpu": 0}, 0.7)
    store.record(1.0, "gpu_busy_fraction", {"gpu": 1}, 0.1)
    assert len(store) == 2
    assert store.total_points() == 3
    assert store.latest("gpu_busy_fraction", gpu=0) == 0.7
    assert store.latest("gpu_busy_fraction", gpu=1) == 0.1
    assert store.latest("gpu_busy_fraction", gpu=9) is None
    assert store.get("nope") is None


def test_store_series_listing_is_deterministic():
    store = TimeSeriesStore()
    store.record(0.0, "b", {"rank": 1}, 1.0)
    store.record(0.0, "a", {"rank": 0}, 1.0)
    store.record(0.0, "a", {"rank": 1}, 1.0)
    keys = [(s.name, s.labels) for s in store.series()]
    assert keys == sorted(keys)
    assert store.names() == ["a", "b"]
    assert [s.labels for s in store.series("a")] == [
        (("rank", "0"),),
        (("rank", "1"),),
    ]


def test_store_accepts_preencoded_label_tuple():
    store = TimeSeriesStore()
    p = store.record(0.0, "x", (("rank", "0"),), 1.0)
    assert p.labels == (("rank", "0"),)
    assert store.latest("x", rank=0) == 1.0
