"""SweepRunner execution modes: parallel == serial == cached, always."""

import pytest

from repro import (
    IpmConfig,
    JobSpec,
    ResultCache,
    SweepReport,
    SweepRunner,
)

#: three cheap monitored jobs differing only in seed.
SPECS = [
    JobSpec(app="square", ntasks=1, command="./square", ipm=IpmConfig(),
            seed=s)
    for s in (1, 2, 3)
]


def _pickles(report):
    return [r.report_pickle for r in report]


class TestByteIdentity:
    def test_parallel_equals_serial_byte_for_byte(self):
        serial = SweepRunner(mode="serial").run(SPECS)
        par = SweepRunner(workers=2, mode="auto").run(SPECS)
        assert all(p for p in _pickles(serial))
        assert _pickles(par) == _pickles(serial)
        assert par.wallclocks() == serial.wallclocks()
        assert [r.events_executed for r in par] == \
               [r.events_executed for r in serial]

    def test_cached_replay_equals_the_fresh_run(self, tmp_path):
        fresh = SweepRunner(mode="serial").run(SPECS)
        runner = SweepRunner(mode="serial",
                             cache=ResultCache(str(tmp_path)))
        cold = runner.run(SPECS)
        warm = runner.run(SPECS)
        assert _pickles(cold) == _pickles(fresh)
        assert _pickles(warm) == _pickles(fresh)
        assert warm.cache_hits == len(SPECS)
        assert warm.executed == 0


class TestRunSemantics:
    def test_results_in_submission_order(self):
        report = SweepRunner(mode="serial").run(SPECS)
        assert [r.spec for r in report] == SPECS

    def test_duplicate_specs_simulate_once_and_fan_out(self):
        report = SweepRunner(mode="serial").run([SPECS[0]] * 3)
        assert len(report) == 3
        assert report.executed == 1
        assert len({r.report_pickle for r in report}) == 1

    def test_serial_fallback_when_the_pool_dies(self, monkeypatch):
        runner = SweepRunner(workers=2, mode="auto")

        def boom(*a, **kw):
            raise OSError("no forks today")

        monkeypatch.setattr(runner, "_run_pool", boom)
        serial = SweepRunner(mode="serial").run(SPECS)
        fallen = runner.run(SPECS)
        assert fallen.mode == "serial"
        assert _pickles(fallen) == _pickles(serial)

    def test_mode_process_propagates_pool_failures(self, monkeypatch):
        runner = SweepRunner(workers=2, mode="process")
        monkeypatch.setattr(
            runner, "_run_pool",
            lambda *a, **kw: (_ for _ in ()).throw(OSError("boom")),
        )
        with pytest.raises(OSError):
            runner.run(SPECS)

    def test_single_spec_runs_serially(self):
        report = SweepRunner(workers=4, mode="auto").run(SPECS[:1])
        assert report.mode == "serial"
        assert len(report) == 1

    def test_unmonitored_specs_have_no_report(self):
        spec = JobSpec(app="square", ntasks=1)
        report = SweepRunner(mode="serial").run([spec])
        assert report[0].report is None
        assert report[0].report_pickle == b""
        assert report.reports() == []
        assert report[0].wallclock > 0


class TestValidation:
    def test_non_jobspec_items_are_rejected(self):
        with pytest.raises(TypeError, match="specs\\[0\\]"):
            SweepRunner(mode="serial").run([{"app": "square", "ntasks": 1}])

    def test_callable_specs_are_rejected(self):
        spec = JobSpec(app=lambda env: None, ntasks=1)
        with pytest.raises(TypeError, match="raw callable"):
            SweepRunner(mode="serial").run([spec])

    def test_bad_mode_and_workers(self):
        with pytest.raises(ValueError, match="mode"):
            SweepRunner(mode="turbo")
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=0)


class TestSweepReportAggregation:
    def test_container_protocol_and_summary(self):
        report = SweepRunner(mode="serial").run(SPECS)
        assert isinstance(report, SweepReport)
        assert len(report) == 3
        assert report[1].spec == SPECS[1]
        summary = report.summary()
        assert summary["jobs"] == 3
        assert summary["executed"] == 3
        assert [r["seed"] for r in summary["results"]] == [1, 2, 3]
        assert all(r["monitored"] for r in summary["results"])

    def test_scaling_points_feed_the_analysis_tools(self):
        from repro.analysis import format_scaling, scaling_series

        specs = [
            JobSpec(app="square", ntasks=n, ipm=IpmConfig(), seed=1)
            for n in (2, 1)
        ]
        report = SweepRunner(mode="serial").run(specs)
        points = scaling_series(report)
        assert [p.nprocs for p in points] == [1, 2]  # sorted by ranks
        assert all(p.breakdown for p in points)
        text = format_scaling(points)
        assert "wall" in text
