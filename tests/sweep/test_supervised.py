"""Supervised sweeps: containment, retries, quarantine, resume.

The acceptance scenario of this layer: a sweep holding one crashing
spec, one hanging spec and one deadlocking spec *completes*, yields
per-spec terminal statuses, and ``resume`` re-runs only what never
finished ok.
"""

import os

import pytest

from repro import (
    IpmConfig,
    JobSpec,
    LivenessLimits,
    ResultCache,
    SweepJournal,
    SweepRunner,
)

#: cheap monitored jobs for byte-identity checks.
SPECS = [
    JobSpec(app="square", ntasks=1, command="./square", ipm=IpmConfig(),
            seed=s)
    for s in (1, 2, 3)
]


def canary(mode, seed=1, **params):
    return JobSpec(app="canary", ntasks=2, seed=seed,
                   app_params={"mode": mode, "work": 1e-3, **params})


def _pickles(report):
    return [r.report_pickle for r in report]


class TestAcceptance:
    def test_mixed_failure_sweep_completes_with_statuses(self, tmp_path):
        """One crash + one hang + one deadlock + one ok: the sweep ends."""
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(
            workers=4, cache=cache, timeout=5.0,
            liveness=LivenessLimits(max_events=20000), resume=True,
        )
        specs = [canary("ok"), canary("crash"), canary("hang"),
                 canary("deadlock"), canary("spin")]
        report = runner.run(specs)
        statuses = [r.status for r in report]
        assert statuses == ["ok", "crashed", "timeout", "deadlock",
                            "livelock"]
        assert report.mode == "supervised"
        assert not report.ok
        assert report.errors_total == 4
        assert report.status_counts() == {
            "ok": 1, "crashed": 1, "timeout": 1, "deadlock": 1,
            "livelock": 1,
        }
        # failed specs carry a diagnosis and no report
        for r in report.failures():
            assert r.error
            assert r.report is None
            assert r.report_pickle == b""
        assert "canary: planned crash" in report[1].error
        assert "wall-clock timeout" in report[2].error
        assert "deadlock" in report[3].error
        assert "watchdog" in report[4].error

    def test_resume_reruns_only_the_non_ok_specs(self, tmp_path):
        """The resume contract (pinned): ok specs replay, failures re-run."""
        cache = ResultCache(str(tmp_path))
        specs = [canary("ok"), canary("crash"), canary("ok", seed=7),
                 canary("deadlock")]

        def make_runner():
            return SweepRunner(
                workers=2, cache=ResultCache(str(tmp_path)), timeout=5.0,
                resume=True, quarantine_after=None,
            )

        first = make_runner().run(specs)
        assert [r.status for r in first] == ["ok", "crashed", "ok",
                                             "deadlock"]
        second = make_runner().run(specs)
        # exactly the two failures were simulated again
        assert second.executed == 2
        assert [r.from_cache for r in second] == [True, False, True, False]
        assert [r.status for r in second] == [r.status for r in first]
        # the replayed results are byte-identical to the fresh ones
        assert _pickles(second)[0] == _pickles(first)[0]
        assert _pickles(second)[2] == _pickles(first)[2]


class TestQuarantine:
    def test_poison_spec_is_quarantined_after_n_failures(self, tmp_path):
        spec = canary("crash")

        def run_once():
            return SweepRunner(
                workers=1, cache=ResultCache(str(tmp_path)),
                resume=True, quarantine_after=2,
            ).run([spec])[0]

        assert run_once().status == "crashed"     # failure #1
        assert run_once().status == "crashed"     # failure #2
        third = run_once()                        # not run at all
        assert third.status == "quarantined"
        assert third.attempts == 0
        assert "quarantined after 2 recorded failures" in third.error

    def test_quarantine_none_never_quarantines(self, tmp_path):
        spec = canary("crash")
        for _ in range(4):
            result = SweepRunner(
                workers=1, cache=ResultCache(str(tmp_path)),
                resume=True, quarantine_after=None,
            ).run([spec])[0]
            assert result.status == "crashed"


class TestRetries:
    def test_deterministic_failures_retry_and_settle(self, tmp_path):
        """A crash is retryable; a deterministic crash consumes attempts."""
        journal = SweepJournal(str(tmp_path / "j.jsonl"))
        runner = SweepRunner(workers=1, retries=2, retry_backoff=0.01,
                             journal=journal)
        result = runner.run([canary("crash")])[0]
        assert result.status == "crashed"
        assert result.attempts == 3  # 1 + 2 retries
        entry = journal.replay()[result.spec_hash]
        assert entry.status == "crashed"

    def test_deadlock_is_not_retried(self):
        runner = SweepRunner(workers=1, retries=3, retry_backoff=0.01)
        result = runner.run([canary("deadlock")])[0]
        assert result.status == "deadlock"
        assert result.attempts == 1

    def test_ok_spec_uses_one_attempt(self):
        runner = SweepRunner(workers=1, retries=3, retry_backoff=0.01)
        result = runner.run([canary("ok")])[0]
        assert result.status == "ok"
        assert result.attempts == 1

    def test_retry_jitter_demands_no_stdlib_random(self, monkeypatch):
        """Jittered retries must never consult the stdlib ``random``."""
        import random

        def forbidden(*a, **kw):  # pragma: no cover - failure path
            raise AssertionError("stdlib random consulted")

        monkeypatch.setattr(random, "random", forbidden)
        monkeypatch.setattr(random, "uniform", forbidden)
        runner = SweepRunner(workers=1, retries=2, retry_backoff=0.01,
                             retry_jitter=0.5)
        result = runner.run([canary("crash")])[0]
        assert result.status == "crashed"
        assert result.attempts == 3


class TestByteIdentityUnderSupervision:
    def test_default_knobs_keep_the_unsupervised_path(self):
        runner = SweepRunner(workers=2)
        assert runner.supervised is False
        assert any(SweepRunner(**kw).supervised for kw in (
            {"timeout": 1.0}, {"retries": 1}, {"resume": True,
             "journal": SweepJournal("unused.jsonl")},
        ))

    def test_robustness_off_matches_serial_byte_for_byte(self):
        """Supervision off => byte-identical to the historical runner."""
        serial = SweepRunner(mode="serial").run(SPECS)
        default = SweepRunner(workers=2, mode="auto").run(SPECS)
        assert default.mode in ("process", "serial")
        assert _pickles(default) == _pickles(serial)

    def test_supervised_ok_sweep_matches_serial_byte_for_byte(self):
        """Child-process containment must not perturb the results."""
        serial = SweepRunner(mode="serial").run(SPECS)
        supervised = SweepRunner(workers=2, timeout=60.0).run(SPECS)
        assert supervised.mode == "supervised"
        assert _pickles(supervised) == _pickles(serial)
        assert supervised.wallclocks() == serial.wallclocks()

    def test_supervised_serial_mode(self):
        serial = SweepRunner(mode="serial").run(SPECS)
        sup = SweepRunner(mode="serial", retries=1).run(SPECS)
        assert sup.mode == "supervised-serial"
        assert _pickles(sup) == _pickles(serial)


class TestWorkerDeathContainment:
    def test_mid_sweep_worker_death_falls_back_byte_identically(
        self, monkeypatch
    ):
        """A worker dying mid-pool must not change the sweep's results."""
        import repro.sweep.runner as runner_mod

        parent = os.getpid()
        real = runner_mod.execute_spec_json
        victim_seed = SPECS[1].seed

        def sabotaged(spec_json, want_xml, liveness=None, fleet=None):
            spec = JobSpec.from_json(spec_json)
            if os.getpid() != parent and spec.seed == victim_seed:
                os._exit(137)  # hard death: no exception, no cleanup
            return real(spec_json, want_xml, liveness, fleet)

        # pickle-by-reference must resolve to the sabotaged version in
        # forked pool workers; fork shares the patched module anyway.
        sabotaged.__module__ = "repro.sweep.runner"
        sabotaged.__qualname__ = "execute_spec_json"
        monkeypatch.setattr(runner_mod, "execute_spec_json", sabotaged)

        serial = SweepRunner(mode="serial").run(SPECS)
        fallen = SweepRunner(workers=2, mode="auto").run(SPECS)
        assert fallen.mode == "serial"  # the pool died, serial finished
        assert _pickles(fallen) == _pickles(serial)

    def test_pool_construction_failure_falls_back(self, monkeypatch):
        """The warm pool itself failing to build degrades cleanly."""
        import repro.sweep.runner as runner_mod

        def no_pool(*a, **kw):
            raise OSError("fork refused")

        monkeypatch.setattr(runner_mod, "WarmWorkerPool", no_pool)
        serial = SweepRunner(mode="serial").run(SPECS)
        fallen = SweepRunner(workers=2, mode="auto").run(SPECS)
        assert fallen.mode == "serial"
        assert _pickles(fallen) == _pickles(serial)


class TestSupervisionValidation:
    def test_bad_knobs_are_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            SweepRunner(timeout=0.0)
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(retries=-1)
        with pytest.raises(ValueError, match="quarantine_after"):
            SweepRunner(quarantine_after=0)

    def test_resume_without_cache_or_journal_is_rejected(self):
        with pytest.raises(ValueError, match="resume"):
            SweepRunner(resume=True)

    def test_resume_with_cache_gets_the_cache_journal(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(cache=cache, resume=True)
        assert runner.journal is not None
        assert runner.journal.path == os.path.join(cache.root,
                                                   "journal.jsonl")

    def test_inactive_liveness_does_not_trigger_supervision(self):
        runner = SweepRunner(liveness=LivenessLimits())
        assert runner.liveness is None
        assert runner.supervised is False


#: subprocess body for the SIGINT teardown test: a supervised sweep
#: over one ok spec and one wall-clock hang, with a side thread that
#: publishes the warm workers' pids as soon as the pool stands up.
_INTERRUPT_SCRIPT = """
import json, sys, threading, time
from repro import JobSpec, ResultCache, SweepRunner

tmp = sys.argv[1]
runner = SweepRunner(
    workers=2, cache=ResultCache(tmp + "/cache"), timeout=300.0,
    resume=True, quarantine_after=100,
)

def dump_pids():
    while True:
        pool = runner._pool
        if pool is not None and len(pool.workers) >= 2:
            pids = [w.proc.pid for w in pool.workers]
            with open(tmp + "/pids.json", "w") as fh:
                json.dump(pids, fh)
            return
        time.sleep(0.02)

threading.Thread(target=dump_pids, daemon=True).start()
specs = [
    JobSpec(app="canary", ntasks=2, seed=1,
            app_params={"mode": "ok", "work": 1e-3}),
    JobSpec(app="canary", ntasks=2, seed=2,
            app_params={"mode": "hang", "work": 1e-3}),
]
runner.run(specs)
print("UNREACHABLE: the sweep was supposed to be interrupted")
"""


class TestWarmPoolLifecycle:
    """Persistent workers: reuse across runs, teardown on interrupt."""

    def test_pool_persists_across_runs_and_close_stops_it(self):
        runner = SweepRunner(workers=2, timeout=10.0)
        runner.run([canary("ok", seed=1), canary("ok", seed=2)])
        pool = runner._pool
        assert pool is not None and len(pool.workers) == 2
        first_pids = sorted(w.proc.pid for w in pool.workers)
        workers = list(pool.workers)
        assert all(w.proc.is_alive() for w in workers)

        # a second sweep through the same runner reuses the warm
        # children instead of paying start-up again.
        runner.run([canary("ok", seed=3), canary("ok", seed=4)])
        assert runner._pool is pool
        assert sorted(w.proc.pid for w in pool.workers) == first_pids

        runner.close()
        for w in workers:
            w.proc.join(5.0)
            assert not w.proc.is_alive()

    def test_runner_is_a_context_manager(self):
        with SweepRunner(workers=2, timeout=10.0) as runner:
            runner.run([canary("ok", seed=1), canary("ok", seed=2)])
            workers = list(runner._pool.workers)
        for w in workers:
            w.proc.join(5.0)
            assert not w.proc.is_alive()

    def test_sigint_kills_warm_workers_and_journal_stays_resumable(
        self, tmp_path
    ):
        """The PR-5 kill-and-resume contract, extended to the warm pool.

        SIGINT mid-sweep must (a) terminate the sweep, (b) leave no
        warm worker running, and (c) leave the journal in a state a
        ``resume`` run picks up from: the finished spec replays from
        cache, only the interrupted one re-runs.
        """
        import json
        import signal
        import subprocess
        import sys
        import time

        script = tmp_path / "interrupted_sweep.py"
        script.write_text(_INTERRUPT_SCRIPT)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, str(script), str(tmp_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        pids_path = tmp_path / "pids.json"
        journal_path = tmp_path / "cache" / "journal.jsonl"
        try:
            # wait until the pool is up AND the ok spec finished (its
            # journal entry closed) — then interrupt mid-hang.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if pids_path.exists() and journal_path.exists():
                    events = [
                        json.loads(line)["event"]
                        for line in journal_path.read_text().splitlines()
                        if line.strip()
                    ]
                    if "ok" in events:
                        break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            assert proc.poll() is None, (
                "sweep subprocess died before the interrupt: "
                f"{proc.communicate()[1].decode()}"
            )
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode != 0
        assert b"UNREACHABLE" not in out

        # (b) every warm worker is gone — no orphans grinding on.
        worker_pids = json.loads(pids_path.read_text())
        assert len(worker_pids) == 2
        deadline = time.monotonic() + 10.0
        alive = list(worker_pids)
        while alive and time.monotonic() < deadline:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.remove(pid)
            time.sleep(0.05)
        assert not alive, f"warm workers survived SIGINT: {alive}"

        # (c) the journal replays: ok spec from cache, hang re-runs
        # (and now times out quickly instead of hanging forever).
        specs = [
            canary("ok", seed=1),
            canary("hang", seed=2),
        ]
        with SweepRunner(
            workers=2, cache=ResultCache(str(tmp_path / "cache")),
            timeout=2.0, resume=True, quarantine_after=100,
        ) as resumed:
            report = resumed.run(specs)
        assert report.executed == 1
        assert [r.from_cache for r in report] == [True, False]
        assert [r.status for r in report] == ["ok", "timeout"]
