"""The stable facade, the deprecated kwargs shim, and `python -m repro`."""

import json
import pickle

import pytest

import repro
from repro import IpmConfig, JobSpec, run_job
from repro.__main__ import (
    EXIT_BAD_INPUT,
    EXIT_EMPTY,
    EXIT_OK,
    EXIT_SPEC_FAILURES,
    main,
)
from repro.cluster.jobs import LEGACY_KWARG_TO_SPEC_FIELD


class TestFacade:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_the_issue_mandated_exports(self):
        for name in ("JobSpec", "run_job", "SweepRunner", "IpmConfig",
                     "TelemetryConfig", "FaultPlan", "JobReport"):
            assert name in repro.__all__

    def test_facade_classes_are_the_canonical_ones(self):
        from repro.cluster.jobs import run_job as deep_run_job
        from repro.sweep.spec import JobSpec as deep_spec

        assert repro.run_job is deep_run_job
        assert repro.JobSpec is deep_spec

    def test_version_is_bumped_for_the_analysis_api(self):
        assert repro.__version__ == "0.5.0"

    def test_analysis_exports_are_on_the_facade(self):
        import repro.analysis as analysis

        for name in ("Finding", "Diagnosis", "SweepDiagnosis", "SpecDelta",
                     "SweepDiff", "analyze_job", "analyze_sweep",
                     "diff_sweeps"):
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(analysis, name)

    def test_analysis_surface_is_pinned(self):
        import repro.analysis as analysis

        assert set(analysis.__all__) >= {
            "ANALYSIS_SCHEMA", "Finding", "Diagnosis", "SweepDiagnosis",
            "SpecDelta", "SweepDiff", "analyze_job", "analyze_sweep",
            "detect_stragglers", "classify", "diff_sweeps", "gate_metrics",
            "to_document", "from_document", "compare_ensembles",
            "scaling_series", "scaling_speedups",
        }
        for name in analysis.__all__:
            assert getattr(analysis, name) is not None


class TestDeprecatedShim:
    def test_legacy_kwargs_warn_and_match_the_spec_path(self):
        spec = JobSpec(app="square", ntasks=1, command="./square",
                       ipm=IpmConfig(), seed=9)
        canonical = run_job(spec)
        with pytest.warns(DeprecationWarning, match="JobSpec"):
            legacy = run_job(
                spec.build_app(), 1, command="./square",
                ipm_config=IpmConfig(), seed=9,
            )
        assert pickle.dumps(legacy.report, protocol=4) == \
               pickle.dumps(canonical.report, protocol=4)
        assert legacy.wallclock == canonical.wallclock

    def test_spec_call_does_not_warn(self, recwarn):
        run_job(JobSpec(app="square", ntasks=1))
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_spec_plus_legacy_kwargs_is_an_error(self):
        spec = JobSpec(app="square", ntasks=1)
        with pytest.raises(TypeError, match="seed"):
            run_job(spec, seed=3)
        with pytest.raises(TypeError, match="ntasks"):
            run_job(spec, 2)

    def test_legacy_call_without_ntasks_is_an_error(self):
        with pytest.raises(TypeError, match="ntasks"):
            run_job(lambda env: None)

    def test_migration_table_covers_the_old_signature(self):
        assert LEGACY_KWARG_TO_SPEC_FIELD == {
            "app": "app",
            "ntasks": "ntasks",
            "command": "command",
            "n_nodes": "n_nodes",
            "ranks_per_node": "ranks_per_node",
            "ipm_config": "ipm",
            "seed": "seed",
            "noise": "noise",
            "cuda_profile": "cuda_profile",
            "faults": "faults",
        }
        spec_fields = {f.name for f in
                       __import__("dataclasses").fields(JobSpec)}
        assert set(LEGACY_KWARG_TO_SPEC_FIELD.values()) <= \
               spec_fields | {"app", "ntasks"}


def _write_specs(tmp_path, specs):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps([s.to_jsonable() for s in specs]))
    return str(path)


class TestCliSweep:
    SPECS = [JobSpec(app="square", ntasks=1, ipm=IpmConfig(), seed=s)
             for s in (1, 2)]

    def test_ok_run_prints_rows_and_writes_summary(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        code = main(["sweep", _write_specs(tmp_path, self.SPECS),
                     "--mode", "serial", "--out", str(out)])
        assert code == EXIT_OK
        printed = capsys.readouterr().out
        assert "2 jobs: 2 simulated" in printed
        summary = json.loads(out.read_text())
        assert summary["jobs"] == 2
        assert [r["seed"] for r in summary["results"]] == [1, 2]

    def test_cache_hits_on_second_pass(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, self.SPECS)
        cache = str(tmp_path / "cache")
        assert main(["sweep", specs, "--mode", "serial",
                     "--cache", cache]) == EXIT_OK
        assert main(["sweep", specs, "--mode", "serial",
                     "--cache", cache]) == EXIT_OK
        assert "2 cache hits" in capsys.readouterr().out

    def test_missing_file_is_bad_input(self, tmp_path):
        assert main(["sweep", str(tmp_path / "nope.json")]) == EXIT_BAD_INPUT

    def test_malformed_json_is_bad_input(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == EXIT_BAD_INPUT

    def test_bad_spec_is_bad_input(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"app": "square"}]))  # no ntasks
        assert main(["sweep", str(bad)]) == EXIT_BAD_INPUT

    def test_empty_list_is_empty(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        assert main(["sweep", str(empty)]) == EXIT_EMPTY

    def test_specs_object_form_is_accepted(self, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps(
            {"specs": [JobSpec(app="square", ntasks=1).to_jsonable()]}
        ))
        assert main(["sweep", str(path), "--mode", "serial"]) == EXIT_OK


class TestCliSupervisedSweep:
    def _canary(self, mode, seed=1):
        return JobSpec(app="canary", ntasks=2, seed=seed,
                       app_params={"mode": mode, "work": 1e-3})

    def test_exit_codes_are_distinct(self):
        assert len({EXIT_OK, EXIT_BAD_INPUT, EXIT_EMPTY,
                    EXIT_SPEC_FAILURES}) == 4
        assert EXIT_SPEC_FAILURES == 4

    def test_failed_specs_exit_4_and_print_statuses(self, tmp_path, capsys):
        specs = _write_specs(
            tmp_path, [self._canary("ok"), self._canary("crash")])
        code = main(["sweep", specs, "--workers", "2",
                     "--timeout", "10", "--out",
                     str(tmp_path / "summary.json")])
        assert code == EXIT_SPEC_FAILURES
        printed = capsys.readouterr().out
        assert "[crashed]" in printed
        assert "1 failed (1 crashed)" in printed
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["errors_total"] == 1
        assert summary["statuses"] == {"ok": 1, "crashed": 1}
        assert [r["status"] for r in summary["results"]] == \
            ["ok", "crashed"]

    def test_watchdog_flags_catch_livelock(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [self._canary("spin")])
        code = main(["sweep", specs, "--workers", "2", "--timeout", "30",
                     "--max-events", "5000"])
        assert code == EXIT_SPEC_FAILURES
        assert "[livelock]" in capsys.readouterr().out

    def test_resume_without_cache_is_bad_input(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [self._canary("ok")])
        assert main(["sweep", specs, "--resume"]) == EXIT_BAD_INPUT
        assert "--cache" in capsys.readouterr().err

    def test_resume_replays_ok_and_reruns_failures(self, tmp_path, capsys):
        """The kill-and-resume flow, via the CLI contract."""
        specs = _write_specs(
            tmp_path, [self._canary("ok"), self._canary("crash")])
        cache = str(tmp_path / "cache")
        base = ["sweep", specs, "--workers", "2", "--timeout", "10",
                "--cache", cache, "--resume", "--quarantine-after", "10"]
        assert main(base) == EXIT_SPEC_FAILURES
        capsys.readouterr()
        assert main(base) == EXIT_SPEC_FAILURES
        printed = capsys.readouterr().out
        # the ok spec replayed from cache; only the crasher re-ran
        assert "1 simulated" in printed
        assert "1 cache hits" in printed

    def test_quarantine_after_takes_effect(self, tmp_path, capsys):
        specs = _write_specs(tmp_path, [self._canary("crash")])
        cache = str(tmp_path / "cache")
        base = ["sweep", specs, "--workers", "1", "--timeout", "10",
                "--cache", cache, "--resume", "--quarantine-after", "1"]
        assert main(base) == EXIT_SPEC_FAILURES
        capsys.readouterr()
        assert main(base) == EXIT_SPEC_FAILURES
        assert "[quarantined]" in capsys.readouterr().out


class TestCliReportAndAliases:
    def test_report_renders_a_saved_xml(self, tmp_path, capsys):
        from repro.core import write_xml

        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        assert main(["report", str(xml)]) == EXIT_OK
        assert "IPM" in capsys.readouterr().out

    def test_report_on_garbage_is_bad_input(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not-ipm/>")
        assert main(["report", str(bad)]) == EXIT_BAD_INPUT

    def test_unknown_subcommand_is_bad_input(self, capsys):
        assert main(["frobnicate"]) == EXIT_BAD_INPUT

    def test_trace2json_is_forwarded(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["trace2json", "--app", "square", "--ntasks", "1",
                     "--out", str(out)])
        assert code == EXIT_OK
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]

    def test_trace2json_module_alias_still_works(self, tmp_path):
        from repro.telemetry.trace2json import main as trace_main

        out = tmp_path / "trace.json"
        assert trace_main(["--app", "square", "--ntasks", "1",
                           "--out", str(out)]) == EXIT_OK
