"""JobSpec identity: hashing, JSON round-trips, validation."""

import dataclasses
import json

import pytest

from repro import FaultPlan, IpmConfig, JobSpec, NoiseConfig, TelemetryConfig
from repro.faults import CudaFaultSpec, RankAbortSpec
from repro.cuda import cudaError_t
from repro.sweep.spec import SPEC_SCHEMA


def full_spec():
    """A spec exercising every serializable field."""
    return JobSpec(
        app="hpl",
        ntasks=4,
        app_params={"preset": "tiny"},
        command="./xhpl.cuda",
        n_nodes=4,
        ranks_per_node=1,
        seed=7,
        ipm=IpmConfig(telemetry=TelemetryConfig(enabled=True,
                                                sinks=("memory",))),
        noise=NoiseConfig(),
        faults=FaultPlan(
            cuda=[CudaFaultSpec(call="cudaMemcpy",
                                error=cudaError_t.cudaErrorInvalidValue,
                                max_failures=1)],
            aborts=[RankAbortSpec(rank=1, at=2.0)],
        ),
        cuda_profile=True,
    )


class TestContentHash:
    def test_equal_specs_hash_equal(self):
        assert full_spec().content_hash() == full_spec().content_hash()

    def test_equal_specs_compare_equal_and_are_hashable(self):
        a, b = full_spec(), full_spec()
        assert a == b
        assert len({a, b}) == 1

    def test_any_field_change_changes_the_hash(self):
        base = full_spec()
        changed = [
            base.replace(app="square", app_params={}),
            base.replace(ntasks=5),
            base.replace(app_params={"preset": "paper_16rank"}),
            base.replace(command="./other"),
            base.replace(n_nodes=8),
            base.replace(ranks_per_node=2),
            base.replace(seed=8),
            base.replace(ipm=None),
            base.replace(ipm=IpmConfig(trace_capacity=1)),
            base.replace(noise=None),
            base.replace(faults=None),
            base.replace(faults=FaultPlan()),
            base.replace(cuda_profile=False),
        ]
        hashes = [base.content_hash()] + [s.content_hash() for s in changed]
        assert len(set(hashes)) == len(hashes)

    def test_app_params_order_does_not_matter(self):
        a = JobSpec(app="hpl", ntasks=2, app_params={"n": 512, "nb": 64})
        b = JobSpec(app="hpl", ntasks=2, app_params=[("nb", 64), ("n", 512)])
        assert a == b
        assert a.content_hash() == b.content_hash()


class TestJsonRoundTrip:
    def test_round_trip_is_identity(self):
        spec = full_spec()
        back = JobSpec.from_json(spec.to_json())
        assert back == spec
        assert back.content_hash() == spec.content_hash()

    def test_json_is_canonical_and_schema_stamped(self):
        data = json.loads(full_spec().to_json())
        assert data["schema"] == SPEC_SCHEMA
        # canonical form: same spec, same text
        assert full_spec().to_json() == full_spec().to_json()

    def test_unknown_fields_are_rejected(self):
        data = full_spec().to_jsonable()
        data["walltime_limit"] = 60
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_jsonable(data)

    def test_unsupported_schema_is_rejected(self):
        data = full_spec().to_jsonable()
        data["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            JobSpec.from_jsonable(data)

    def test_app_and_ntasks_are_required(self):
        with pytest.raises(ValueError, match="app"):
            JobSpec.from_jsonable({"ntasks": 2})

    def test_minimal_object_decodes_with_defaults(self):
        spec = JobSpec.from_jsonable({"app": "square", "ntasks": 1})
        assert spec == JobSpec(app="square", ntasks=1)


class TestValidation:
    def test_bad_shapes_raise(self):
        with pytest.raises(ValueError, match="ntasks"):
            JobSpec(app="hpl", ntasks=0)
        with pytest.raises(ValueError, match="ranks_per_node"):
            JobSpec(app="hpl", ntasks=1, ranks_per_node=0)
        with pytest.raises(ValueError, match="n_nodes"):
            JobSpec(app="hpl", ntasks=1, n_nodes=-1)

    def test_config_fields_are_type_checked(self):
        with pytest.raises(TypeError, match="ipm"):
            JobSpec(app="hpl", ntasks=1, ipm={"host_idle": True})
        with pytest.raises(TypeError, match="noise"):
            JobSpec(app="hpl", ntasks=1, noise=object())
        with pytest.raises(TypeError, match="faults"):
            JobSpec(app="hpl", ntasks=1, faults=object())

    def test_app_params_values_must_be_json_primitive(self):
        with pytest.raises(TypeError, match="app_params"):
            JobSpec(app="hpl", ntasks=1, app_params={"cfg": object()})

    def test_duplicate_app_params_keys_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            JobSpec(app="hpl", ntasks=1, app_params=[("n", 1), ("n", 2)])

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            full_spec().seed = 99


class TestCallableEscapeHatch:
    def test_callable_specs_run_but_refuse_identity(self):
        spec = JobSpec(app=lambda env: None, ntasks=1)
        assert not spec.serializable
        with pytest.raises(TypeError, match="cannot be serialized"):
            spec.to_json()
        with pytest.raises(TypeError, match="cannot be serialized"):
            spec.content_hash()

    def test_callable_plus_app_params_is_rejected_at_build(self):
        spec = JobSpec(app=lambda env: None, ntasks=1,
                       app_params={"preset": "tiny"})
        with pytest.raises(TypeError, match="registry-named"):
            spec.build_app()


class TestRegistry:
    def test_registered_apps_cover_the_paper_workloads(self):
        from repro.sweep import registered_apps

        assert set(registered_apps()) >= {"square", "hpl", "paratec", "amber"}

    def test_unknown_app_name_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown app"):
            JobSpec(app="nosuch", ntasks=1).build_app()

    def test_unknown_preset_fails_loudly(self):
        spec = JobSpec(app="hpl", ntasks=1, app_params={"preset": "huge"})
        with pytest.raises(ValueError, match="preset"):
            spec.build_app()

    def test_unknown_config_key_fails_loudly(self):
        spec = JobSpec(app="hpl", ntasks=1, app_params={"nn": 512})
        with pytest.raises(ValueError, match="unknown app_params"):
            spec.build_app()

    def test_preset_with_overrides(self):
        from repro.apps import HplConfig
        from repro.sweep import build_app

        tiny = HplConfig.tiny()
        built = build_app("hpl", {"preset": "tiny", "nb": tiny.nb * 2})
        assert callable(built)
