"""Sweep lifecycle events: structured logs, fleet streaming, identity."""

import json
import logging
import time

import pytest

from repro import IpmConfig, JobSpec, ResultCache, SweepRunner, TelemetryConfig
from repro.fleet import FleetAggregator
from repro.sweep.events import (
    LIFECYCLE_LOGGER,
    log_event,
    spec_finish,
    spec_start,
)

SPECS = [JobSpec(app="square", ntasks=1, seed=s) for s in (1, 2)]

TELEMETRY_SPECS = [
    JobSpec(
        app="square", ntasks=2, seed=s,
        ipm=IpmConfig(telemetry=TelemetryConfig(
            enabled=True, sinks=("memory",),
        )),
    )
    for s in (1, 2)
]


def wait_until(cond, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def _pickles(report):
    return [r.report_pickle for r in report.results]


class TestEventRecords:
    def test_spec_start_shape(self):
        record = spec_start("abc123", meta={"app": "hpl"})
        assert record["kind"] == "spec_start"
        assert record["job"] == "abc123"
        assert record["source"] == "sweep"
        assert record["meta"] == {"app": "hpl"}
        assert record["hts"] > 0

    def test_spec_finish_shape(self):
        record = spec_finish("abc123", "timeout", attempts=3,
                             wallclock=1.5, error="took too long")
        assert record["kind"] == "spec_finish"
        assert record["status"] == "timeout"
        assert record["attempts"] == 3
        assert record["from_cache"] is False
        assert record["wallclock"] == 1.5
        assert record["error"] == "took too long"

    def test_log_event_emits_json_line_plus_attribute(self, caplog):
        record = spec_finish("abc123", "ok")
        with caplog.at_level(logging.INFO, logger=LIFECYCLE_LOGGER):
            log_event(record)
        [entry] = caplog.records
        assert json.loads(entry.getMessage()) == json.loads(
            json.dumps(record)
        )
        assert entry.sweep_event is record

    def test_log_event_is_free_when_logger_disabled(self, caplog):
        logger = logging.getLogger(LIFECYCLE_LOGGER)
        old = logger.level
        logger.setLevel(logging.WARNING)
        try:
            log_event(spec_start("quiet"))
        finally:
            logger.setLevel(old)
        assert not caplog.records


class TestRunnerLifecycleLogging:
    def events(self, caplog):
        return [r.sweep_event for r in caplog.records
                if r.name == LIFECYCLE_LOGGER]

    def test_serial_run_logs_start_and_finish_per_spec(self, caplog):
        with caplog.at_level(logging.INFO, logger=LIFECYCLE_LOGGER):
            SweepRunner(mode="serial").run(SPECS)
        events = self.events(caplog)
        kinds = [e["kind"] for e in events]
        assert kinds.count("spec_start") == 2
        assert kinds.count("spec_finish") == 2
        finishes = [e for e in events if e["kind"] == "spec_finish"]
        assert all(e["status"] == "ok" for e in finishes)
        assert all(e["wallclock"] > 0 for e in finishes)

    def test_cache_hits_log_finish_with_provenance(self, caplog, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        SweepRunner(mode="serial", cache=cache).run(SPECS)
        caplog.clear()
        with caplog.at_level(logging.INFO, logger=LIFECYCLE_LOGGER):
            SweepRunner(mode="serial", cache=cache).run(SPECS)
        events = self.events(caplog)
        assert [e["kind"] for e in events] == ["spec_finish", "spec_finish"]
        assert all(e["from_cache"] and e["attempts"] == 0 for e in events)

    def test_supervised_failure_logs_status_and_attempts(self, caplog):
        spec = JobSpec(app="canary", ntasks=2,
                       app_params={"mode": "crash", "work": 1e-3})
        with caplog.at_level(logging.INFO, logger=LIFECYCLE_LOGGER):
            report = SweepRunner(mode="serial", retries=1).run([spec])
        status = report.results[0].status
        assert status != "ok"
        finish = [e for e in self.events(caplog)
                  if e["kind"] == "spec_finish"][0]
        assert finish["status"] == status
        assert finish["attempts"] == report.results[0].attempts >= 1
        assert finish["error"]


class TestRunnerFleetStreaming:
    def test_lifecycle_records_reach_the_aggregator(self):
        with FleetAggregator() as agg:
            with SweepRunner(mode="serial",
                             fleet=agg.ingest_address) as runner:
                runner.run(SPECS)
            store = agg.store
            assert wait_until(
                lambda: store.registry.counts()["finished"] == 2
            )
            for spec in SPECS:
                record = store.registry.job(spec.content_hash())
                assert record.source == "sweep"
                assert record.status == "ok"

    def test_telemetry_samples_stream_from_warm_workers(self):
        with FleetAggregator() as agg:
            with SweepRunner(workers=2, mode="process",
                             fleet=agg.ingest_address) as runner:
                runner.run(TELEMETRY_SPECS)
            store = agg.store
            assert wait_until(
                lambda: store.registry.counts()["finished"] == 2,
                timeout=30.0,
            )
            assert store.samples > 0
            key = TELEMETRY_SPECS[0].content_hash()
            rollups = store.job_rollups(key)
            assert "gpu_busy_fraction" in rollups["metrics"]
            # node-level series carried hostnames into the node registry
            assert store.registry.nodes()

    def test_fleet_does_not_flip_supervised_mode(self):
        runner = SweepRunner(fleet="127.0.0.1:9")
        assert not runner.supervised

    def test_unreachable_aggregator_does_not_fail_the_sweep(self):
        with pytest.warns(RuntimeWarning, match="degraded"):
            with SweepRunner(mode="serial", fleet="127.0.0.1:1") as runner:
                report = runner.run(SPECS)
        assert all(r.status == "ok" for r in report.results)


class TestFleetByteIdentity:
    """The acceptance pin: fleet mode changes no result byte."""

    def test_reports_identical_with_fleet_on_and_off(self):
        plain = SweepRunner(mode="serial").run(TELEMETRY_SPECS)
        with FleetAggregator() as agg:
            with SweepRunner(mode="serial",
                             fleet=agg.ingest_address) as runner:
                streamed = runner.run(TELEMETRY_SPECS)
        assert _pickles(streamed) == _pickles(plain)

    def test_content_hash_ignores_fleet(self):
        # the fleet knob is runner state, not spec state: same hashes
        hashes = [s.content_hash() for s in TELEMETRY_SPECS]
        with FleetAggregator() as agg:
            with SweepRunner(mode="serial",
                             fleet=agg.ingest_address) as runner:
                report = runner.run(TELEMETRY_SPECS)
        assert [r.spec_hash for r in report.results] == hashes
