"""The result cache: byte-identical replay, corruption tolerance."""

import os
import pickle

from repro import IpmConfig, JobSpec, ResultCache, SweepRunner
from repro.sweep.cache import CACHE_VERSION, _CacheRecord


SPEC = JobSpec(app="square", ntasks=1, command="./square", ipm=IpmConfig(),
               seed=5)


def _runner(tmp_path):
    return SweepRunner(mode="serial", cache=ResultCache(str(tmp_path)))


def _entry_file(tmp_path, spec=SPEC):
    h = spec.content_hash()
    return os.path.join(str(tmp_path), h[:2], h, "result.pkl")


class TestHitsAndMisses:
    def test_cache_hit_is_byte_identical_to_the_fresh_run(self, tmp_path):
        runner = _runner(tmp_path)
        fresh = runner.run([SPEC])
        assert (fresh.cache_hits, fresh.cache_misses) == (0, 1)
        assert not fresh[0].from_cache

        replay = runner.run([SPEC])
        assert (replay.cache_hits, replay.cache_misses) == (1, 0)
        assert replay[0].from_cache
        assert replay.executed == 0
        assert replay[0].report_pickle == fresh[0].report_pickle
        assert replay[0].wallclock == fresh[0].wallclock
        assert replay[0].events_executed == fresh[0].events_executed

    def test_hits_survive_a_new_cache_instance(self, tmp_path):
        fresh = _runner(tmp_path).run([SPEC])
        replay = _runner(tmp_path).run([SPEC])
        assert replay.cache_hits == 1
        assert replay[0].report_pickle == fresh[0].report_pickle

    def test_entry_carries_xml_and_meta_sidecars(self, tmp_path):
        _runner(tmp_path).run([SPEC])
        entry = os.path.dirname(_entry_file(tmp_path))
        assert sorted(os.listdir(entry)) == [
            "meta.json", "profile.xml", "result.pkl",
        ]
        xml = open(os.path.join(entry, "profile.xml")).read()
        assert xml.startswith("<?xml")
        assert "<ipm_job " in xml


class TestCorruptionIsAMiss:
    def test_truncated_entry_recomputes_instead_of_crashing(self, tmp_path):
        runner = _runner(tmp_path)
        fresh = runner.run([SPEC])
        path = _entry_file(tmp_path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])

        again = runner.run([SPEC])
        assert again.cache_hits == 0
        assert again.cache_misses == 1
        assert again.executed == 1
        assert again[0].report_pickle == fresh[0].report_pickle
        # and the recompute healed the entry
        healed = runner.run([SPEC])
        assert healed.cache_hits == 1

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run([SPEC])
        with open(_entry_file(tmp_path), "wb") as fh:
            fh.write(b"not a pickle at all")
        assert runner.cache.lookup(SPEC) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        runner = _runner(tmp_path)
        fresh = runner.run([SPEC])
        record = _CacheRecord(
            version=CACHE_VERSION + 1,
            spec_hash=SPEC.content_hash(),
            report_pickle=fresh[0].report_pickle,
            wallclock=fresh[0].wallclock,
            events_executed=fresh[0].events_executed,
        )
        with open(_entry_file(tmp_path), "wb") as fh:
            pickle.dump(record, fh)
        assert runner.cache.lookup(SPEC) is None

    def test_truncated_report_payload_is_a_miss(self, tmp_path):
        runner = _runner(tmp_path)
        fresh = runner.run([SPEC])
        record = _CacheRecord(
            version=CACHE_VERSION,
            spec_hash=SPEC.content_hash(),
            report_pickle=fresh[0].report_pickle[:-10],
            wallclock=fresh[0].wallclock,
            events_executed=fresh[0].events_executed,
        )
        with open(_entry_file(tmp_path), "wb") as fh:
            pickle.dump(record, fh)
        assert runner.cache.lookup(SPEC) is None

    def test_empty_cache_dir_is_just_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.lookup(SPEC) is None
        assert (cache.hits, cache.misses) == (0, 1)


class TestUnwritableCache:
    def test_store_failure_disables_writes_and_warns(self, tmp_path):
        """A read-only cache dir degrades the sweep, never kills it."""
        import pytest

        # the cache root is a regular file, so every store fails with
        # OSError for any uid (chmod-based read-only setups are
        # bypassed when tests run as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(str(blocker))
        runner = SweepRunner(mode="serial", cache=cache)
        with pytest.warns(RuntimeWarning, match="cache writes disabled"):
            report = runner.run([SPEC])
        assert cache.write_disabled
        assert report[0].status == "ok"
        assert report[0].report_pickle  # the result itself is intact

        # further stores are silent no-ops, not repeated warnings
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert cache.store(SPEC, b"x", 1.0, 1) is None

    def test_read_only_cache_still_replays(self, tmp_path):
        """Lookups keep hitting after writes are disabled."""
        _runner(tmp_path).run([SPEC])  # populate
        cache = ResultCache(str(tmp_path))
        cache.write_disabled = True
        report = SweepRunner(mode="serial", cache=cache).run([SPEC])
        assert report[0].from_cache
        assert report.executed == 0
