"""SweepJournal: append-only history, torn-write tolerance, degradation."""

import json

import pytest

from repro.sweep.journal import JOURNAL_VERSION, JournalEntry, SweepJournal


@pytest.fixture
def journal(tmp_path):
    return SweepJournal(str(tmp_path / "journal.jsonl"))


class TestRecordReplay:
    def test_missing_file_is_empty_history(self, journal):
        assert journal.replay() == {}
        assert journal.failures("deadbeef") == 0

    def test_terminal_events_aggregate(self, journal):
        journal.record("aaa", "start")
        journal.record("aaa", "crashed", attempt=2, error="boom")
        journal.record("bbb", "start")
        journal.record("bbb", "ok")
        entries = journal.replay()
        assert entries["aaa"].status == "crashed"
        assert entries["aaa"].failures == 1
        assert entries["aaa"].error == "boom"
        assert entries["aaa"].attempts == 2
        assert not entries["aaa"].interrupted
        assert entries["bbb"].status == "ok"
        assert entries["bbb"].failures == 0

    def test_ok_resets_the_failure_count(self, journal):
        journal.record("aaa", "timeout", error="slow")
        journal.record("aaa", "crashed", error="boom")
        assert journal.failures("aaa") == 2
        journal.record("aaa", "ok")
        assert journal.failures("aaa") == 0
        assert journal.replay()["aaa"].error is None

    def test_unclosed_start_marks_interrupted(self, journal):
        """A sweep killed mid-spec leaves a dangling 'start'."""
        journal.record("aaa", "start")
        entry = journal.replay()["aaa"]
        assert entry.interrupted
        assert entry.status is None

    def test_unknown_event_is_rejected_at_write_time(self, journal):
        with pytest.raises(ValueError, match="unknown journal event"):
            journal.record("aaa", "exploded")


class TestTolerance:
    def test_torn_and_corrupt_lines_are_skipped(self, journal):
        journal.record("aaa", "ok")
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "spec": "bbb", "even')  # torn mid-append
        journal.record("ccc", "crashed")
        entries = SweepJournal(journal.path).replay()
        assert set(entries) == {"aaa", "ccc"}

    def test_unknown_version_lines_are_skipped(self, journal):
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"v": JOURNAL_VERSION + 1, "spec": "aaa",
                                 "event": "ok"}) + "\n")
        journal.record("bbb", "ok")
        assert set(journal.replay()) == {"bbb"}

    def test_non_dict_and_untyped_lines_are_skipped(self, journal):
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("[1, 2, 3]\n")
            fh.write(json.dumps({"v": JOURNAL_VERSION, "spec": 7,
                                 "event": "ok"}) + "\n")
        assert journal.replay() == {}

    def test_write_failure_disables_with_warning(self, tmp_path):
        # the journal's parent "directory" is a regular file, so the
        # append must fail with OSError for any uid (chmod-based
        # read-only setups are bypassed when tests run as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        journal = SweepJournal(str(blocker / "journal.jsonl"))
        with pytest.warns(RuntimeWarning, match="journal disabled"):
            journal.record("aaa", "ok")
        assert journal.disabled
        # later records are silent no-ops, not repeated warnings
        journal.record("bbb", "ok")
        assert journal.replay() == {}


class TestEntryDefaults:
    def test_journal_entry_shape(self):
        entry = JournalEntry("abc")
        assert entry.status is None
        assert entry.failures == 0
        assert entry.attempts == 0
        assert not entry.interrupted
