"""HPL workload-model tests (the Figs. 8/9 application)."""

import pytest

from repro.apps.hpl import HplConfig, hpl_app
from repro.cluster import run_job
from repro.core import IpmConfig, metrics
from repro.simt import NoiseConfig


def run_tiny(**kw):
    return run_job(
        lambda env: hpl_app(env, HplConfig.tiny()), 4, command="xhpl.tiny", **kw
    )


class TestHplStructure:
    def test_four_fig9_kernels(self):
        res = run_tiny(ipm_config=IpmConfig())
        kernels = set(metrics.kernel_time_by_rank(res.report))
        assert kernels == {
            "dgemm_nn_e_kernel",
            "dgemm_nt_tex_kernel",
            "dtrsm_gpu_64_mm",
            "transpose",
        }

    def test_dgemm_dominates(self):
        res = run_tiny(ipm_config=IpmConfig())
        shares = metrics.kernel_share(res.report)
        assert max(shares, key=shares.get) == "dgemm_nn_e_kernel"
        assert shares["dgemm_nn_e_kernel"] > 0.5

    def test_host_idle_near_zero(self):
        """Async transfers ⇒ @CUDA_HOST_IDLE ≈ 0 (§IV-C)."""
        res = run_tiny(ipm_config=IpmConfig())
        assert metrics.host_idle_percent(res.report) < 0.01

    def test_event_sync_present_but_small(self):
        res = run_tiny(ipm_config=IpmConfig())
        by = res.report.merged_by_name()
        assert by["cudaEventSynchronize"].count > 0
        sync = by["cudaEventSynchronize"].total
        assert 0 < sync < 0.25 * sum(t.wallclock for t in res.report.tasks)

    def test_well_balanced_across_ranks(self):
        res = run_tiny(ipm_config=IpmConfig())
        imb = metrics.kernel_imbalance(res.report)
        assert imb["dgemm_nn_e_kernel"].imbalance < 0.1

    def test_bcast_and_pivot_collectives(self):
        res = run_tiny(ipm_config=IpmConfig())
        by = res.report.merged_by_name()
        steps = HplConfig.tiny().steps
        assert by["MPI_Bcast"].count == steps * 4
        assert by["MPI_Allreduce"].count == steps * 4 + 4

    def test_all_ranks_agree_on_residual(self):
        res = run_tiny()
        residuals = {r["residual"] for r in res.results}
        assert residuals == {4.0}

    def test_no_device_memory_leak(self):
        res = run_tiny()
        for node in res.cluster.nodes:
            assert node.devices[0].memory.bytes_in_use == 0


class TestHplCalibration:
    def test_paper_16rank_wallclock(self):
        """The Fig. 8 operating point: ≈126.4 s on 16 nodes."""
        res = run_job(
            lambda env: hpl_app(env, HplConfig.paper_16rank()), 16,
            command="xhpl.cuda", noise=NoiseConfig(), seed=1,
        )
        assert res.wallclock == pytest.approx(126.4, rel=0.01)

    def test_event_sync_in_paper_band(self):
        """2–5 s per task in cudaEventSynchronize (§IV-C)."""
        res = run_job(
            lambda env: hpl_app(env, HplConfig.paper_16rank()), 16,
            command="xhpl.cuda", seed=1,
        )
        for r in res.results:
            assert 2.0 <= r["event_sync_time"] <= 5.0

    def test_monitoring_dilatation_below_noise(self):
        """Fig. 8's claim: IPM's dilatation ≪ run-to-run variability."""
        import statistics

        walls = []
        for seed in range(4):
            res = run_job(
                lambda env: hpl_app(env, HplConfig.tiny()), 4,
                noise=NoiseConfig(), seed=seed,
            )
            walls.append(res.wallclock)
        sigma = statistics.stdev(walls)
        plain = run_job(lambda env: hpl_app(env, HplConfig.tiny()), 4, seed=11)
        mon = run_job(lambda env: hpl_app(env, HplConfig.tiny()), 4, seed=11,
                      ipm_config=IpmConfig())
        dilatation = mon.wallclock - plain.wallclock
        assert dilatation > 0
        assert dilatation < sigma
