"""Tests for the square example and the Table I SDK benchmark models."""

import pytest

from repro.apps.sdk import PAPER_TABLE1, SDK_BENCHMARKS
from repro.apps.square import SquareConfig, square_app
from repro.cluster import run_job
from repro.core import IpmConfig


class TestSquare:
    def test_fig4_banner_rows(self):
        res = run_job(
            lambda env: square_app(env), 1, command="./cuda.ipm",
            ipm_config=IpmConfig(kernel_timing=False, host_idle=False),
        )
        by = res.report.merged_by_name()
        assert by["cudaSetupArgument"].count == 2
        assert by["cudaLaunch"].count == 1
        assert by["cudaConfigureCall"].count == 1
        # context init dominates (Fig. 4: cudaMalloc 67.71 %wall)
        top = max(by.items(), key=lambda kv: kv[1].total)[0]
        assert top == "cudaMalloc"

    def test_fig6_exec_and_idle_match(self):
        res = run_job(lambda env: square_app(env), 1, command="./cuda.ipm",
                      ipm_config=IpmConfig())
        by = res.report.merged_by_name()
        exec_t = by["@CUDA_EXEC_STRM00"].total
        idle_t = by["@CUDA_HOST_IDLE"].total
        assert exec_t == pytest.approx(1.15, rel=0.02)
        assert idle_t == pytest.approx(exec_t, rel=0.02)

    def test_verified_data_roundtrip(self):
        cfg = SquareConfig(n=512, repeat=2, verify=True)
        res = run_job(lambda env: square_app(env, cfg), 1)
        assert res.results[0] == float(512 * 512)

    def test_kernel_scales_with_problem(self):
        small = SquareConfig(n=1000, repeat=100)
        assert small.kernel_seconds() == pytest.approx(
            1.15 * (1000 * 100) / 1e9, rel=1e-9
        )


class TestSdkBenchmarks:
    @pytest.mark.parametrize("name", sorted(SDK_BENCHMARKS))
    def test_invocation_counts_match_table1(self, name):
        res = run_job(SDK_BENCHMARKS[name], 1, command=name, cuda_profile=True)
        prof = res.profilers[0]
        assert prof.kernel_invocations() == PAPER_TABLE1[name].invocations

    @pytest.mark.parametrize("name", sorted(SDK_BENCHMARKS))
    def test_profiler_total_near_paper(self, name):
        res = run_job(SDK_BENCHMARKS[name], 1, command=name, cuda_profile=True,
                      seed=9)
        prof_total = res.profilers[0].kernel_time_total()
        assert prof_total == pytest.approx(
            PAPER_TABLE1[name].profiler_seconds, rel=0.05
        )

    @pytest.mark.parametrize("name", sorted(SDK_BENCHMARKS))
    def test_ipm_exceeds_profiler(self, name):
        """The Table I sign, per benchmark."""
        res = run_job(SDK_BENCHMARKS[name], 1, command=name, cuda_profile=True,
                      ipm_config=IpmConfig(), seed=5)
        ipm_total = res.report.tasks[0].gpu_exec_time()
        prof_total = res.profilers[0].kernel_time_total()
        assert ipm_total > prof_total
        # and within a few percent (Table I: 0.04–1.87 %)
        assert (ipm_total - prof_total) / prof_total < 0.05

    def test_short_kernels_have_larger_relative_error(self):
        """Table I's trend: scan (0.43 ms kernels) shows a larger
        relative difference than eigenvalues (17.8 ms kernels)."""

        def diff(name):
            res = run_job(SDK_BENCHMARKS[name], 1, command=name,
                          cuda_profile=True, ipm_config=IpmConfig(), seed=7)
            ipm_total = res.report.tasks[0].gpu_exec_time()
            prof_total = res.profilers[0].kernel_time_total()
            return (ipm_total - prof_total) / prof_total

        assert diff("scan") > diff("eigenvalues")

    def test_concurrent_kernels_overlap(self):
        """concurrentKernels: 8 streams overlap — the device-side span
        of the clock_block kernels is ≈ 1/8 of their summed time."""
        res = run_job(SDK_BENCHMARKS["concurrentKernels"], 1,
                      command="concurrentKernels", cuda_profile=True)
        prof = res.profilers[0]
        blocks = [r for r in prof.kernel_records() if r.method == "clock_block"]
        assert len(blocks) == 8
        span_end = max(r.timestamp for r in blocks)
        span_start = min(r.timestamp - r.gputime_us * 1e-6 for r in blocks)
        summed = sum(r.gputime_us for r in blocks) * 1e-6
        assert span_end - span_start < summed / 3
