"""The canary workload: planned misbehaviour for the supervision stack."""

import pytest

from repro import JobSpec, LivenessLimits, run_job
from repro.apps import CanaryConfig
from repro.errors import classify_error
from repro.simt import DeadlockError, LivenessError, ProcessCrashed


def spec(mode, ntasks=2, **params):
    return JobSpec(app="canary", ntasks=ntasks,
                   app_params={"mode": mode, "work": 1e-3, **params})


class TestConfig:
    def test_defaults(self):
        cfg = CanaryConfig()
        assert cfg.mode == "ok"
        assert cfg.victim == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="canary mode"):
            CanaryConfig(mode="nap")
        with pytest.raises(ValueError, match="work"):
            CanaryConfig(work=-1.0)
        with pytest.raises(ValueError, match="victim"):
            CanaryConfig(victim=-1)


class TestModes:
    def test_ok_mode_completes_on_every_rank(self):
        res = run_job(spec("ok", ntasks=3))
        assert res.results == ["ok", "ok", "ok"]
        assert res.wallclock > 0

    def test_crash_mode_raises_out_of_the_victim_rank(self):
        with pytest.raises(ProcessCrashed, match="planned crash on rank 0"):
            run_job(spec("crash"))

    def test_only_the_victim_misbehaves(self):
        with pytest.raises(ProcessCrashed, match="rank 1"):
            run_job(spec("crash", victim=1))

    def test_deadlock_mode_deadlocks_with_a_named_site(self):
        with pytest.raises(DeadlockError) as err:
            run_job(spec("deadlock"))
        assert "completion 'canary.never'" in str(err.value)
        assert classify_error(err.value) == "deadlock"

    def test_spin_mode_trips_the_event_budget_watchdog(self):
        """The hang canary: only the watchdog ends a zero-delay livelock."""
        with pytest.raises(LivenessError, match="event-count budget"):
            run_job(spec("spin"),
                    liveness=LivenessLimits(max_events=5000))
        assert classify_error(LivenessError("event-count", 1, 1, 0.0, 0)) \
            == "livelock"
