"""Tests for FifoServer/BandwidthLink, RNG streams and the noise model."""

import numpy as np
import pytest

from repro.simt import BandwidthLink, FifoServer, NoiseConfig, NoiseModel, RngStreams, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestFifoServer:
    def test_idle_server_starts_now(self, sim):
        srv = FifoServer(sim, "s")
        done = srv.serve(2.0)
        sim.run()
        assert done.fired
        assert done.value == (0.0, 2.0)

    def test_back_to_back_requests_queue(self, sim):
        srv = FifoServer(sim, "s")
        d1 = srv.serve(2.0)
        d2 = srv.serve(3.0)
        sim.run()
        assert d1.value == (0.0, 2.0)
        assert d2.value == (2.0, 5.0)
        assert srv.busy_time == 5.0

    def test_min_start_delays_service(self, sim):
        srv = FifoServer(sim, "s")
        done = srv.serve(1.0, min_start=4.0)
        sim.run()
        assert done.value == (4.0, 5.0)

    def test_gap_between_requests(self, sim):
        srv = FifoServer(sim, "s")
        srv.serve(1.0)

        def later():
            sim.schedule(0, srv.serve, 1.0)

        sim.schedule(10.0, later)
        t = sim.run()
        assert t == 11.0
        assert srv.utilization() == pytest.approx(2.0 / 11.0)

    def test_negative_duration_rejected(self, sim):
        with pytest.raises(ValueError):
            FifoServer(sim).serve(-1.0)


class TestBandwidthLink:
    def test_transfer_time_model(self, sim):
        link = BandwidthLink(sim, latency=1e-6, bandwidth=1e9)
        assert link.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_transfers_serialize(self, sim):
        link = BandwidthLink(sim, latency=0.0, bandwidth=100.0)
        a = link.transfer(100)  # 1 s
        b = link.transfer(200)  # 2 s
        sim.run()
        assert a.value == (0.0, 1.0)
        assert b.value == (1.0, 3.0)
        assert link.bytes_moved == 300

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            BandwidthLink(sim, latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            BandwidthLink(sim, latency=0.0, bandwidth=0.0)
        link = BandwidthLink(sim, latency=0.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            link.transfer_time(-5)


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        r = RngStreams(1)
        assert r.get("a") is r.get("a")

    def test_reproducible_across_instances(self):
        x = RngStreams(7).get("jitter").random(5)
        y = RngStreams(7).get("jitter").random(5)
        assert np.array_equal(x, y)

    def test_streams_independent_of_consumption_order(self):
        r1 = RngStreams(3)
        r1.get("a").random(100)
        a_then_b = r1.get("b").random(5)
        r2 = RngStreams(3)
        b_only = r2.get("b").random(5)
        assert np.array_equal(a_then_b, b_only)

    def test_different_seeds_differ(self):
        x = RngStreams(1).get("s").random(5)
        y = RngStreams(2).get("s").random(5)
        assert not np.array_equal(x, y)

    def test_fork_independent(self):
        base = RngStreams(5)
        f1 = base.fork(1).get("s").random(5)
        f2 = base.fork(2).get("s").random(5)
        assert not np.array_equal(f1, f2)


class TestNoiseModel:
    def test_disabled_is_identity(self):
        nm = NoiseModel(np.random.default_rng(0), NoiseConfig(enabled=False))
        assert nm.perturb(1.23) == 1.23
        assert nm.injected == 0.0

    def test_noise_only_adds_time(self):
        nm = NoiseModel(np.random.default_rng(0))
        for d in [0.001, 0.1, 1.0, 10.0]:
            assert nm.perturb(d) >= d

    def test_zero_duration_untouched(self):
        nm = NoiseModel(np.random.default_rng(0))
        assert nm.perturb(0.0) == 0.0

    def test_negative_duration_rejected(self):
        nm = NoiseModel(np.random.default_rng(0))
        with pytest.raises(ValueError):
            nm.perturb(-1.0)

    def test_mean_perturbation_is_small(self):
        nm = NoiseModel(np.random.default_rng(0))
        total = sum(nm.perturb(1.0) for _ in range(2000))
        # jitter_mean=0.002 plus daemon 0.05*0.004=0.0002 → ~0.22% mean
        assert 1.0 < total / 2000 < 1.01

    def test_injected_accounting(self):
        nm = NoiseModel(np.random.default_rng(0))
        total_nominal = 0.0
        total_actual = 0.0
        for _ in range(100):
            total_nominal += 1.0
            total_actual += nm.perturb(1.0)
        assert nm.injected == pytest.approx(total_actual - total_nominal)
