"""Property-based tests of the simulation kernel's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import Completion, Gate, Simulator, join


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1, max_size=60,
    )
)
def test_events_fire_in_nondecreasing_time_order(delays):
    """Whatever order events are scheduled in, they execute sorted by
    time with stable FIFO tie-breaking."""
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, lambda i=i, d=d: fired.append((sim.now, d, i)))
    sim.run()
    times = [t for t, _d, _i in fired]
    assert times == sorted(times)
    assert len(fired) == len(delays)
    # each event fired exactly at its scheduled time
    for t, d, _i in fired:
        assert t == d
    # ties preserve insertion order
    for (t1, _d1, i1), (t2, _d2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2


@settings(max_examples=40, deadline=None)
@given(
    sleeps=st.lists(
        st.lists(st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
                 min_size=1, max_size=8),
        min_size=1, max_size=8,
    )
)
def test_process_local_time_is_sum_of_sleeps(sleeps):
    """Each process ends exactly at the sum of its sleeps regardless of
    interleaving with other processes."""
    sim = Simulator()

    def body(mine):
        for d in mine:
            sim.sleep(d)
        return sim.now

    procs = [sim.spawn(body, s, name=f"p{i}") for i, s in enumerate(sleeps)]
    sim.run_all()
    for proc, mine in zip(procs, sleeps):
        assert proc.result == sum(mine)


@settings(max_examples=40, deadline=None)
@given(
    fire_delay=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    waiter_delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1, max_size=6,
    ),
)
def test_completion_wakes_at_max_of_fire_and_wait(fire_delay, waiter_delays):
    """wait() returns at max(fire_time, wait_start): never earlier,
    never later (modulo the zero-delay wake event)."""
    sim = Simulator()
    c = Completion(sim)
    c.fire_after(fire_delay, "v")

    def body(d):
        sim.sleep(d)
        v = c.wait()
        assert v == "v"
        return sim.now

    procs = [sim.spawn(body, d) for d in waiter_delays]
    sim.run_all()
    for proc, d in zip(procs, waiter_delays):
        assert proc.result == max(fire_delay, d)


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=0, max_size=10,
    )
)
def test_join_fires_at_latest_member(delays):
    sim = Simulator()
    members = []
    for d in delays:
        c = Completion(sim)
        c.fire_after(d, None)
        members.append(c)
    j = join(sim, members)
    t = sim.run()
    assert j.fired
    assert j.fire_time == (max(delays) if delays else 0.0)


@settings(max_examples=30, deadline=None)
@given(
    arrivals=st.lists(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        min_size=1, max_size=10,
    )
)
def test_gate_opens_exactly_at_last_arrival(arrivals):
    sim = Simulator()
    gate = Gate(sim, parties=len(arrivals))

    def body(d):
        sim.sleep(d)
        gate.arrive().wait()
        return sim.now

    procs = [sim.spawn(body, d) for d in arrivals]
    sim.run_all()
    expected = max(arrivals)
    for proc in procs:
        assert proc.result == expected


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_noise_is_deterministic_per_seed(seed):
    from repro.simt import NoiseConfig, NoiseModel

    a = NoiseModel(np.random.default_rng(seed), NoiseConfig())
    b = NoiseModel(np.random.default_rng(seed), NoiseConfig())
    xs = [a.perturb(0.5) for _ in range(20)]
    ys = [b.perturb(0.5) for _ in range(20)]
    assert xs == ys
    assert a.bias == b.bias
