"""Tests of the scheduler, processes, and synchronization objects."""

import pytest

from repro.simt import (
    Completion,
    Gate,
    ProcessCrashed,
    ProcessState,
    SimulationError,
    Simulator,
    WaitQueue,
)


@pytest.fixture()
def sim():
    return Simulator()


class TestScheduling:
    def test_callbacks_run_in_time_order(self, sim):
        seen = []
        sim.schedule(2.0, seen.append, "b")
        sim.schedule(1.0, seen.append, "a")
        sim.run()
        assert seen == ["a", "b"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(5.0, seen.append, 5)
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_run_until_advances_clock_when_idle(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_executed_counter(self, sim):
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5


class TestProcesses:
    def test_single_process_runs(self, sim):
        trace = []

        def body():
            trace.append(sim.now)
            sim.sleep(3.0)
            trace.append(sim.now)
            return "done"

        proc = sim.spawn(body, name="p0")
        sim.run_all()
        assert trace == [0.0, 3.0]
        assert proc.result == "done"
        assert proc.state is ProcessState.FINISHED
        assert proc.started_at == 0.0 and proc.finished_at == 3.0

    def test_two_processes_interleave(self, sim):
        trace = []

        def body(label, dt):
            for _ in range(3):
                sim.sleep(dt)
                trace.append((label, sim.now))

        sim.spawn(body, "a", 1.0)
        sim.spawn(body, "b", 2.0)
        sim.run_all()
        # At the t=2.0 tie, b's wakeup was scheduled first (at t=0,
        # lower sequence number) so it runs before a's second wakeup.
        assert trace == [
            ("a", 1.0),
            ("b", 2.0),
            ("a", 2.0),
            ("a", 3.0),
            ("b", 4.0),
            ("b", 6.0),
        ]

    def test_spawn_delay(self, sim):
        times = []
        sim.spawn(lambda: times.append(sim.now), delay=4.0)
        sim.run_all()
        assert times == [4.0]

    def test_zero_sleep_is_noop(self, sim):
        def body():
            t0 = sim.now
            sim.sleep(0.0)
            assert sim.now == t0

        sim.spawn(body)
        sim.run_all()

    def test_process_exception_propagates(self, sim):
        def body():
            sim.sleep(1.0)
            raise ValueError("boom")

        sim.spawn(body, name="bad")
        with pytest.raises(ProcessCrashed) as ei:
            sim.run()
        assert isinstance(ei.value.__cause__, ValueError)

    def test_done_completion_carries_result(self, sim):
        worker = sim.spawn(lambda: 42, name="w")
        results = []

        def waiter():
            results.append(worker.done.wait())

        sim.spawn(waiter)
        sim.run_all()
        assert results == [42]

    def test_sleep_outside_process_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.sleep(1.0)

    def test_deadlock_detection(self, sim):
        c = Completion(sim, name="never")
        sim.spawn(c.wait, name="stuck")
        with pytest.raises(SimulationError, match="deadlock.*stuck"):
            sim.run()


class TestCompletion:
    def test_wait_before_fire(self, sim):
        c = Completion(sim)
        got = []

        def waiter():
            got.append((c.wait(), sim.now))

        sim.spawn(waiter)
        sim.schedule(5.0, c.fire, "v")
        sim.run_all()
        assert got == [("v", 5.0)]

    def test_wait_after_fire_is_instant(self, sim):
        c = Completion(sim)
        c.fire("x")
        got = []

        def waiter():
            sim.sleep(3.0)
            got.append((c.wait(), sim.now))

        sim.spawn(waiter)
        sim.run_all()
        assert got == [("x", 3.0)]

    def test_double_fire_rejected(self, sim):
        c = Completion(sim)
        c.fire()
        with pytest.raises(RuntimeError):
            c.fire()

    def test_fire_after(self, sim):
        c = Completion(sim)
        c.fire_after(2.5, "later")
        sim.run()
        assert c.fired and c.fire_time == 2.5 and c.value == "later"

    def test_multiple_waiters_all_wake(self, sim):
        c = Completion(sim)
        woke = []
        for i in range(4):
            sim.spawn(lambda i=i: woke.append((i, c.wait())), name=f"w{i}")
        sim.schedule(1.0, c.fire, "z")
        sim.run_all()
        assert sorted(woke) == [(i, "z") for i in range(4)]

    def test_callbacks(self, sim):
        c = Completion(sim)
        seen = []
        c.add_callback(seen.append)
        c.fire(7)
        c.add_callback(lambda v: seen.append(v * 10))
        sim.run()
        assert seen == [7, 70]


class TestWaitQueue:
    def test_fifo_wakeup(self, sim):
        q = WaitQueue(sim)
        order = []

        def waiter(i):
            q.wait()
            order.append(i)

        for i in range(3):
            sim.spawn(waiter, i)
        sim.schedule(1.0, q.notify)
        sim.schedule(2.0, q.notify)
        sim.schedule(3.0, q.notify)
        sim.run_all()
        assert order == [0, 1, 2]

    def test_notify_empty_returns_false(self, sim):
        assert WaitQueue(sim).notify() is False

    def test_notify_all(self, sim):
        q = WaitQueue(sim)
        n = []
        for i in range(5):
            sim.spawn(q.wait)
        sim.schedule(1.0, lambda: n.append(q.notify_all()))
        sim.run_all()
        assert n == [5]


class TestGate:
    def test_opens_at_last_arrival(self, sim):
        g = Gate(sim, parties=3)

        def body(i):
            sim.sleep(float(i))
            g.arrive().wait()
            return sim.now

        procs = [sim.spawn(body, i) for i in range(3)]
        sim.run_all()
        assert [p.result for p in procs] == [2.0, 2.0, 2.0]

    def test_too_many_arrivals_rejected(self, sim):
        g = Gate(sim, parties=1)
        g.arrive()
        with pytest.raises(RuntimeError):
            g.arrive()

    def test_bad_parties(self, sim):
        with pytest.raises(ValueError):
            Gate(sim, parties=0)
