"""Unit tests for the virtual clock and event heap."""

import pytest

from repro.simt.clock import VirtualClock
from repro.simt.events import EventHeap


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance(self):
        c = VirtualClock()
        c.advance_to(3.5)
        assert c.now == 3.5

    def test_advance_to_same_time_ok(self):
        c = VirtualClock(2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    def test_backwards_rejected(self):
        c = VirtualClock(2.0)
        with pytest.raises(ValueError):
            c.advance_to(1.0)


class TestEventHeap:
    def test_empty(self):
        h = EventHeap()
        assert not h
        assert h.pop() is None
        assert h.peek_time() is None

    def test_time_order(self):
        h = EventHeap()
        order = []
        h.push(2.0, order.append, ("b",))
        h.push(1.0, order.append, ("a",))
        h.push(3.0, order.append, ("c",))
        while h:
            ev = h.pop()
            ev.fn(*ev.args)
        assert order == ["a", "b", "c"]

    def test_fifo_ties(self):
        h = EventHeap()
        evs = [h.push(1.0, lambda: None, (), priority=0) for _ in range(10)]
        popped = [h.pop() for _ in range(10)]
        assert [e.seq for e in popped] == [e.seq for e in evs]

    def test_priority_beats_seq(self):
        h = EventHeap()
        late_prio = h.push(1.0, lambda: None, (), priority=5)
        early_prio = h.push(1.0, lambda: None, (), priority=1)
        assert h.pop() is early_prio
        assert h.pop() is late_prio

    def test_cancel_skipped(self):
        h = EventHeap()
        a = h.push(1.0, lambda: None)
        b = h.push(2.0, lambda: None)
        a.cancel()
        assert h.pop() is b
        assert h.pop() is None

    def test_cancel_all_makes_heap_falsy(self):
        h = EventHeap()
        evs = [h.push(float(i), lambda: None) for i in range(4)]
        for e in evs:
            e.cancel()
        assert not h
        assert len(h) == 0

    def test_peek_time_skips_cancelled(self):
        h = EventHeap()
        a = h.push(1.0, lambda: None)
        h.push(2.0, lambda: None)
        a.cancel()
        assert h.peek_time() == 2.0

    def test_len_counts_live_only(self):
        h = EventHeap()
        a = h.push(1.0, lambda: None)
        h.push(2.0, lambda: None)
        assert len(h) == 2
        a.cancel()
        assert len(h) == 1
