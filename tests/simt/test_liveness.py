"""Liveness watchdog and enriched deadlock diagnosis."""

import pytest

from repro.simt import (
    Completion,
    DeadlockError,
    LivenessError,
    LivenessLimits,
    Simulator,
)


class TestLivenessLimits:
    def test_validation(self):
        with pytest.raises(ValueError):
            LivenessLimits(max_events=0)
        with pytest.raises(ValueError):
            LivenessLimits(max_virtual_time=-1.0)

    def test_active(self):
        assert not LivenessLimits().active
        assert LivenessLimits(max_events=10).active
        assert LivenessLimits(max_virtual_time=5.0).active

    def test_inactive_limits_are_dropped_by_simulator(self):
        assert Simulator(liveness=LivenessLimits()).liveness is None
        armed = LivenessLimits(max_events=10)
        assert Simulator(liveness=armed).liveness is armed


class TestEventBudget:
    def test_self_rescheduling_livelock_is_caught(self):
        sim = Simulator(liveness=LivenessLimits(max_events=100))

        def respin():
            sim.schedule(0.0, respin)

        sim.schedule(0.0, respin)
        with pytest.raises(LivenessError, match="event-count budget"):
            sim.run()
        assert sim.events_executed == 100

    def test_budget_not_hit_when_work_finishes(self):
        sim = Simulator(liveness=LivenessLimits(max_events=100))
        hits = []
        for i in range(10):
            sim.schedule(float(i), lambda: hits.append(sim.now))
        sim.run()
        assert len(hits) == 10

    def test_error_reports_progress(self):
        sim = Simulator(liveness=LivenessLimits(max_events=5))

        def respin():
            sim.schedule(1.0, respin)

        sim.schedule(0.0, respin)
        with pytest.raises(LivenessError) as err:
            sim.run()
        msg = str(err.value)
        assert "5" in msg and "events" in msg and "t=" in msg


class TestVirtualTimeBudget:
    def test_runaway_virtual_time_is_caught(self):
        sim = Simulator(liveness=LivenessLimits(max_virtual_time=10.0))

        def hop():
            sim.schedule(3.0, hop)

        sim.schedule(0.0, hop)
        with pytest.raises(LivenessError, match="virtual-time budget"):
            sim.run()
        # the event past the bound was never executed
        assert sim.now <= 10.0

    def test_job_inside_budget_unaffected(self):
        sim = Simulator(liveness=LivenessLimits(max_virtual_time=100.0))
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0


class TestDeadlockDiagnosis:
    def test_message_names_wait_target_and_block_time(self):
        """The deadlock report format is part of the API (pinned)."""
        sim = Simulator()

        def stuck():
            sim.sleep(1.25)
            Completion(sim, name="never.fires").wait()

        sim.spawn(stuck, name="victim")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        msg = str(err.value)
        assert msg.startswith("deadlock: event heap empty with 1 blocked")
        assert "victim waiting on completion 'never.fires'" in msg
        assert "since t=1.250000" in msg
        assert [p.name for p in err.value.blocked] == ["victim"]

    def test_multiple_blocked_processes_all_reported(self):
        sim = Simulator()

        def stuck(name):
            def body():
                Completion(sim, name=f"{name}.gate").wait()
            return body

        sim.spawn(stuck("alpha"), name="alpha")
        sim.spawn(stuck("beta"), name="beta")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        msg = str(err.value)
        assert "2 blocked processes" in msg
        assert "alpha waiting on completion 'alpha.gate'" in msg
        assert "beta waiting on completion 'beta.gate'" in msg

    def test_deadlock_status_is_classified(self):
        from repro.errors import classify_error

        sim = Simulator()
        c = Completion(sim, name="gate")
        sim.spawn(c.wait, name="p")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert classify_error(err.value) == "deadlock"
