"""Exhaustive sweep of the generated CUBLAS surface + flop-model checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda import Device, GpuTimingModel, Runtime
from repro.libs import CUBLAS_API, Cublas, CublasStatus
from repro.libs.cublas import _CPLX_FACTOR, _ELEM_SIZE, routine_bytes, routine_flops
from repro.simt import Simulator

S = CublasStatus


def make_rt():
    sim = Simulator()
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_mean = 0.0
    t.context_init_sigma = 0.0
    dev = Device(sim, timing=t, rng=np.random.default_rng(0))
    return sim, Runtime(sim, [dev])


def test_every_compute_routine_executes():
    """All 152 generated compute routines run end to end and put work
    on the device."""
    sim, rt = make_rt()
    cb = Cublas(rt)
    compute = [c for c in CUBLAS_API if c.kind != "helper"]
    assert len(compute) == 152

    # the hand-written hot-routine wrappers take C positional signatures
    positional = {
        "cublasSgemm": lambda cb: cb.cublasSgemm("N", "N", 32, 32, 32),
        "cublasDgemm": lambda cb: cb.cublasDgemm("N", "N", 32, 32, 32),
        "cublasCgemm": lambda cb: cb.cublasCgemm("N", "N", 32, 32, 32),
        "cublasZgemm": lambda cb: cb.cublasZgemm("N", "N", 32, 32, 32),
        "cublasDtrsm": lambda cb: cb.cublasDtrsm("L", "L", "N", "N", 32, 32),
        "cublasDaxpy": lambda cb: cb.cublasDaxpy(32, 1.0),
        "cublasDdot": lambda cb: cb.cublasDdot(32),
        "cublasDscal": lambda cb: cb.cublasDscal(32, 2.0),
        "cublasDznrm2": lambda cb: cb.cublasDznrm2(32),
    }

    def body():
        cb.cublasInit()
        for spec in compute:
            if spec.name in positional:
                status = positional[spec.name](cb)
            else:
                status = getattr(cb, spec.name)(m=32, n=32, k=32)
            # blocking scalar routines may return (status, value)
            if isinstance(status, tuple):
                status = status[0]
            assert status == S.CUBLAS_STATUS_SUCCESS, spec.name
        rt.cudaThreadSynchronize()

    sim.spawn(body)
    sim.run()
    assert rt.device.compute.kernels_executed == len(compute)


def test_blocking_routines_synchronize_generated_path():
    sim, rt = make_rt()
    cb = Cublas(rt)

    def body():
        cb.cublasInit()
        cb.cublasDgemm("N", "N", 4096, 4096, 4096)  # long async kernel
        t0 = sim.now
        cb.cublasIdamax(n=10)  # scalar result: must wait for the queue
        return sim.now - t0

    proc = sim.spawn(body)
    sim.run()
    assert proc.result > 0.1


class TestFlopFormulas:
    def test_gemm(self):
        assert routine_flops("gemm", 10, 20, 30, 1.0) == 2 * 10 * 20 * 30
        assert routine_flops("gemm", 10, 20, 30, 4.0) == 8 * 10 * 20 * 30

    def test_level1(self):
        assert routine_flops("axpy", 1, 100, 1, 1.0) == 200
        assert routine_flops("scal", 1, 100, 1, 1.0) == 100
        assert routine_flops("rot", 1, 100, 1, 1.0) == 600
        assert routine_flops("rotg", 1, 1, 1, 1.0) == 32.0

    def test_level2(self):
        assert routine_flops("gemv", 10, 20, 1, 1.0) == 400
        assert routine_flops("trsv", 10, 10, 10, 1.0) == 100
        assert routine_flops("her2", 8, 8, 1, 4.0) == 4 * 4 * 64

    def test_level3_families(self):
        assert routine_flops("syrk", 1, 10, 20, 1.0) == 100 * 20
        assert routine_flops("trsm", 10, 20, 1, 1.0) == 100 * 20
        assert routine_flops("symm", 10, 20, 1, 1.0) == 2 * 100 * 20

    def test_unknown_routine_rejected(self):
        with pytest.raises(ValueError):
            routine_flops("quux", 1, 1, 1, 1.0)

    def test_bytes_by_level(self):
        assert routine_bytes("blas1", "axpy", 1, 100, 1, 8) == 800
        assert routine_bytes("blas2", "gemv", 10, 20, 1, 8) == 8 * (200 + 30)
        assert routine_bytes("blas3", "gemm", 10, 20, 30, 16) == 16 * (
            10 * 30 + 30 * 20 + 10 * 20
        )


@settings(max_examples=50, deadline=None)
@given(
    spec=st.sampled_from([c for c in CUBLAS_API if c.kind != "helper"]),
    m=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
    k=st.integers(min_value=1, max_value=512),
)
def test_flops_and_bytes_positive_and_scale(spec, m, n, k):
    """Property: every routine's flop/byte model is positive and
    monotone in n."""
    factor = _CPLX_FACTOR[spec.precision]
    es = _ELEM_SIZE[spec.precision]
    f1 = routine_flops(spec.routine, m, n, k, factor)
    f2 = routine_flops(spec.routine, m, n + 64, k, factor)
    assert f1 > 0
    if spec.routine not in ("rotg", "rotm", "rotmg"):
        assert f2 >= f1
    b = routine_bytes(spec.kind, spec.routine, m, n, k, es)
    assert b > 0
