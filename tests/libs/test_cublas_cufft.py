"""Tests for the accelerated libraries (CUBLAS, CUFFT, thunking, host BLAS)."""

import numpy as np
import pytest

from repro.cuda import Device, GpuTimingModel, Runtime
from repro.libs import (
    CUBLAS_API,
    CUBLAS_BY_NAME,
    CUFFT_API,
    Cublas,
    CublasStatus,
    Cufft,
    CufftResult,
    HostBlas,
    ThunkingBlas,
)
from repro.simt import Simulator

S = CublasStatus


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def rt(sim):
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_mean = 0.0
    t.context_init_sigma = 0.0
    dev = Device(sim, timing=t, rng=np.random.default_rng(0))
    return Runtime(sim, [dev])


def run(sim, fn):
    proc = sim.spawn(fn, name="body")
    sim.run()
    return proc.result


class TestCublasSpec:
    def test_exactly_167_calls(self):
        assert len(CUBLAS_API) == 167  # "167 calls in CUBLAS" (§III-D)

    def test_no_duplicates(self):
        names = [c.name for c in CUBLAS_API]
        assert len(set(names)) == 167

    def test_known_names_present(self):
        for name in ("cublasSgemm", "cublasZgemm", "cublasIdamax",
                     "cublasDznrm2", "cublasScasum", "cublasCsscal",
                     "cublasZdrot", "cublasSetMatrix", "cublasDsdot"):
            assert name in CUBLAS_BY_NAME, name

    def test_scalar_routines_marked_blocking(self):
        assert CUBLAS_BY_NAME["cublasDdot"].blocking
        assert CUBLAS_BY_NAME["cublasDznrm2"].blocking
        assert not CUBLAS_BY_NAME["cublasDgemm"].blocking

    def test_all_entry_points_callable(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            missing = [c.name for c in CUBLAS_API if not callable(getattr(cb, c.name, None))]
            assert not missing

        run(sim, body)


class TestCublasBehaviour:
    def test_gemm_launches_through_runtime(self, sim, rt):
        cb = Cublas(rt)
        calls_before = rt.calls_made

        def body():
            cb.cublasInit()
            cb.cublasDgemm("N", "N", 512, 512, 512)
            rt.cudaThreadSynchronize()

        run(sim, body)
        # launch triple + sync + init ⇒ runtime saw the calls (LD_PRELOAD
        # visibility of library-internal calls).
        assert rt.calls_made - calls_before >= 4

    def test_gemm_cost_scales_cubically(self, sim, rt):
        cb = Cublas(rt)

        def timed(nn):
            t0 = sim.now
            cb.cublasDgemm("N", "N", nn, nn, nn)
            rt.cudaThreadSynchronize()
            return sim.now - t0

        def body():
            cb.cublasInit()
            return timed(256), timed(1024)

        t_small, t_big = run(sim, body)
        assert t_big > 30 * t_small

    def test_zgemm_4x_flops_of_dgemm(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            t0 = sim.now
            cb.cublasDgemm("N", "N", 1024, 1024, 1024)
            rt.cudaThreadSynchronize()
            td = sim.now - t0
            t0 = sim.now
            cb.cublasZgemm("N", "N", 1024, 1024, 1024)
            rt.cudaThreadSynchronize()
            tz = sim.now - t0
            return td, tz

        td, tz = run(sim, body)
        assert tz == pytest.approx(4 * td, rel=0.05)

    def test_dot_blocks_gemm_does_not(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            t0 = sim.now
            cb.cublasDgemm("N", "N", 2048, 2048, 2048)
            async_cost = sim.now - t0
            t0 = sim.now
            cb.cublasDdot(10_000_000)
            blocking_cost = sim.now - t0
            return async_cost, blocking_cost

        async_cost, blocking_cost = run(sim, body)
        assert async_cost < 1e-4          # returned before the gemm ran
        assert blocking_cost > async_cost  # waited for gemm + dot

    def test_set_get_matrix_move_time(self, sim, rt):
        cb = Cublas(rt)
        nbytes = 2048 * 2048 * 16

        def body():
            cb.cublasInit()
            st, ptr = cb.cublasAlloc(2048 * 2048, 16)
            assert st == S.CUBLAS_STATUS_SUCCESS
            t0 = sim.now
            cb.cublasSetMatrix(2048, 2048, 16, None, ptr)
            return sim.now - t0

        t = run(sim, body)
        model = rt.device.timing
        assert t == pytest.approx(model.h2d_time(nbytes, pinned=False), rel=0.01)

    def test_last_call_info_records_bytes(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            cb.cublasDgemm("N", "N", 100, 200, 300)
            return cb.last_call_info

        name, nbytes = run(sim, body)
        assert name == "cublasDgemm"
        assert nbytes == 8 * (100 * 300 + 300 * 200 + 100 * 200)

    def test_alloc_failure_status(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            st, ptr = cb.cublasAlloc(1 << 40, 1)
            return st, ptr, cb.cublasGetError()

        st, ptr, err = run(sim, body)
        assert st == S.CUBLAS_STATUS_ALLOC_FAILED and ptr is None
        assert err == S.CUBLAS_STATUS_ALLOC_FAILED

    def test_generated_routine_with_kw_dims(self, sim, rt):
        cb = Cublas(rt)

        def body():
            cb.cublasInit()
            assert cb.cublasSsyrk(n=256, k=128) == S.CUBLAS_STATUS_SUCCESS
            assert cb.cublasChemv(m=64, n=64) == S.CUBLAS_STATUS_SUCCESS
            rt.cudaThreadSynchronize()

        run(sim, body)


class TestCufft:
    def test_13_calls(self):
        assert len(CUFFT_API) == 13  # "13 calls in CUFFT" (§III-D)

    def test_plan_exec_destroy(self, sim, rt):
        ft = Cufft(rt)

        def body():
            res, plan = ft.cufftPlan3d(64, 64, 64, "Z2Z")
            assert res == CufftResult.CUFFT_SUCCESS
            assert ft.cufftExecZ2Z(plan) == CufftResult.CUFFT_SUCCESS
            rt.cudaThreadSynchronize()
            assert ft.cufftDestroy(plan) == CufftResult.CUFFT_SUCCESS
            assert ft.cufftExecZ2Z(plan) == CufftResult.CUFFT_INVALID_PLAN

        run(sim, body)

    def test_bigger_fft_costs_more(self, sim, rt):
        ft = Cufft(rt)

        def timed(n):
            _, plan = ft.cufftPlan3d(n, n, n, "Z2Z")
            t0 = sim.now
            ft.cufftExecZ2Z(plan)
            rt.cudaThreadSynchronize()
            ft.cufftDestroy(plan)
            return sim.now - t0

        def body():
            rt.cudaMalloc(64)
            return timed(32), timed(128)

        t_small, t_big = run(sim, body)
        assert t_big > 10 * t_small

    def test_invalid_sizes(self, sim, rt):
        ft = Cufft(rt)

        def body():
            res, plan = ft.cufftPlan1d(0)
            return res, plan

        res, plan = run(sim, body)
        assert res == CufftResult.CUFFT_INVALID_SIZE and plan is None

    def test_exec_on_stream(self, sim, rt):
        ft = Cufft(rt)

        def body():
            rt.cudaMalloc(64)
            _, st = rt.cudaStreamCreate()
            _, plan = ft.cufftPlan1d(4096, "C2C", batch=8)
            ft.cufftSetStream(plan, st)
            assert ft.cufftExecC2C(plan) == CufftResult.CUFFT_SUCCESS
            assert rt.cudaStreamQuery(st).name == "cudaErrorNotReady"
            rt.cudaStreamSynchronize(st)

        run(sim, body)


class TestThunking:
    def test_transfer_dwarfs_compute_for_paratec_sizes(self, sim, rt):
        """The §IV-D observation: thunked zgemm time is transfer-dominated."""
        cb = Cublas(rt)
        th = ThunkingBlas(cb)

        def body():
            cb.cublasInit()
            m = n = k = 600  # PARATEC-scale operands
            t0 = sim.now
            th.zgemm(m, n, k)
            total = sim.now - t0
            # compute-only reference
            t0 = sim.now
            cb.cublasZgemm("N", "N", m, n, k)
            rt.cudaThreadSynchronize()
            compute = sim.now - t0
            return total, compute

        total, compute = run(sim, body)
        transfer = total - compute
        assert transfer > compute

    def test_thunk_blocks_caller(self, sim, rt):
        cb = Cublas(rt)
        th = ThunkingBlas(cb)

        def body():
            cb.cublasInit()
            t0 = sim.now
            th.dgemm(1024, 1024, 1024)
            return sim.now - t0

        assert run(sim, body) > 0.001  # fully blocking semantics

    def test_memory_is_released(self, sim, rt):
        cb = Cublas(rt)
        th = ThunkingBlas(cb)

        def body():
            cb.cublasInit()
            for _ in range(5):
                th.zgemm(512, 512, 512)

        run(sim, body)
        assert rt.device.memory.bytes_in_use == 0


class TestHostBlas:
    def test_charges_caller_clock(self, sim):
        hb = HostBlas(sim)

        def body():
            t0 = sim.now
            hb.dgemm(1024, 1024, 1024)
            return sim.now - t0

        proc = sim.spawn(body)
        sim.run()
        flops = 2 * 1024**3
        expected = flops / (9.6e9 * 0.88)
        assert proc.result == pytest.approx(expected, rel=0.01)

    def test_zgemm_4x_dgemm(self, sim):
        hb = HostBlas(sim)

        def body():
            t0 = sim.now
            hb.dgemm(512, 512, 512)
            td = sim.now - t0
            t0 = sim.now
            hb.zgemm(512, 512, 512)
            return td, sim.now - t0

        proc = sim.spawn(body)
        sim.run()
        td, tz = proc.result
        assert tz == pytest.approx(4 * td, rel=0.01)

    def test_accounting(self, sim):
        hb = HostBlas(sim)

        def body():
            hb.daxpy(1000)
            hb.ddot(1000)

        sim.spawn(body)
        sim.run()
        assert hb.calls == 2
        assert hb.time_spent > 0
