"""Tests for the OpenCL substrate and its IPM interposition (§VI)."""

import numpy as np
import pytest

from repro.core import Ipm, IpmConfig
from repro.core.ocl_wrappers import ocl_exec_name, wrap_opencl
from repro.cuda import Device, GpuTimingModel, Kernel
from repro.ocl import (
    CL_INVALID_KERNEL,
    CL_INVALID_MEM_OBJECT,
    CL_INVALID_VALUE,
    CL_PROFILING_COMMAND_END,
    CL_PROFILING_COMMAND_START,
    CL_QUEUE_PROFILING_ENABLE,
    CL_SUCCESS,
    OCL_API,
    OpenCL,
)
from repro.simt import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def ocl(sim):
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_mean = 0.0
    t.context_init_sigma = 0.0
    dev = Device(sim, timing=t, rng=np.random.default_rng(0))
    return OpenCL(sim, [dev])


def run(sim, fn):
    proc = sim.spawn(fn, name="host")
    sim.run()
    return proc.result


def setup_ctx(ocl):
    """platform → device → context → profiling queue → built program."""
    _, platforms = ocl.clGetPlatformIDs()
    _, devices = ocl.clGetDeviceIDs(platforms[0])
    _, ctx = ocl.clCreateContext(devices[0])
    _, queue = ocl.clCreateCommandQueue(ctx, devices[0],
                                        CL_QUEUE_PROFILING_ENABLE)
    _, program = ocl.clCreateProgramWithSource(ctx, "__kernel void k(){}")
    ocl.clBuildProgram(program)
    return ctx, queue, program


class TestOpenClSemantics:
    def test_full_pipeline_with_data(self, sim, ocl):
        src = np.arange(64, dtype=np.float32)
        dst = np.zeros_like(src)

        def body():
            ctx, queue, program = setup_ctx(ocl)
            st, buf = ocl.clCreateBuffer(ctx, src.nbytes)
            assert st == CL_SUCCESS
            st, _ = ocl.clEnqueueWriteBuffer(queue, buf, True, src)
            assert st == CL_SUCCESS
            st, kern = ocl.clCreateKernel(program, Kernel("k", nominal_duration=0.01))
            assert st == CL_SUCCESS
            ocl.clSetKernelArg(kern, 0, buf)
            st, ev = ocl.clEnqueueNDRangeKernel(queue, kern, 1024, 64)
            assert st == CL_SUCCESS
            st, _ = ocl.clEnqueueReadBuffer(queue, buf, True, dst)
            assert st == CL_SUCCESS
            assert ocl.clReleaseMemObject(buf) == CL_SUCCESS
            return ev

        run(sim, body)
        np.testing.assert_array_equal(src, dst)

    def test_blocking_read_waits_for_kernel(self, sim, ocl):
        """The OpenCL analogue of §III-C's implicit host blocking."""

        def body():
            ctx, queue, program = setup_ctx(ocl)
            _, buf = ocl.clCreateBuffer(ctx, 4096)
            _, kern = ocl.clCreateKernel(program, Kernel("slow", nominal_duration=1.0))
            ocl.clEnqueueNDRangeKernel(queue, kern, 64, 64)
            t0 = sim.now
            ocl.clEnqueueReadBuffer(queue, buf, True)
            return sim.now - t0

        assert run(sim, body) > 1.0

    def test_nonblocking_read_returns_immediately(self, sim, ocl):
        def body():
            ctx, queue, program = setup_ctx(ocl)
            _, buf = ocl.clCreateBuffer(ctx, 4096)
            _, kern = ocl.clCreateKernel(program, Kernel("slow", nominal_duration=1.0))
            ocl.clEnqueueNDRangeKernel(queue, kern, 64, 64)
            t0 = sim.now
            st, ev = ocl.clEnqueueReadBuffer(queue, buf, False)
            elapsed = sim.now - t0
            ocl.clWaitForEvents([ev])
            return elapsed

        assert run(sim, body) < 0.001

    def test_event_profiling_matches_kernel(self, sim, ocl):
        def body():
            ctx, queue, program = setup_ctx(ocl)
            _, kern = ocl.clCreateKernel(program, Kernel("k", nominal_duration=0.25))
            st, ev = ocl.clEnqueueNDRangeKernel(queue, kern, 256, 64)
            ocl.clFinish(queue)
            _, start = ocl.clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START)
            _, end = ocl.clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_END)
            return (end - start) * 1e-9

        assert run(sim, body) == pytest.approx(0.25, rel=1e-6)

    def test_profiling_incomplete_event_rejected(self, sim, ocl):
        def body():
            ctx, queue, program = setup_ctx(ocl)
            _, kern = ocl.clCreateKernel(program, Kernel("k", nominal_duration=1.0))
            _, ev = ocl.clEnqueueNDRangeKernel(queue, kern, 64, 64)
            st, _ = ocl.clGetEventProfilingInfo(ev, CL_PROFILING_COMMAND_START)
            ocl.clFinish(queue)
            return st

        assert run(sim, body) == CL_INVALID_VALUE

    def test_error_paths(self, sim, ocl):
        def body():
            ctx, queue, program = setup_ctx(ocl)
            assert ocl.clCreateBuffer(ctx, -5)[0] == CL_INVALID_VALUE
            assert ocl.clCreateKernel({"built": False}, None)[0] == CL_INVALID_KERNEL
            _, buf = ocl.clCreateBuffer(ctx, 64)
            ocl.clReleaseMemObject(buf)
            assert ocl.clReleaseMemObject(buf) == CL_INVALID_MEM_OBJECT
            unbuilt = ocl.clCreateProgramWithSource(ctx, "x")[1]
            assert ocl.clCreateKernel(unbuilt, Kernel("k", nominal_duration=1))[0] \
                == CL_INVALID_KERNEL

        run(sim, body)

    def test_queues_are_independent(self, sim, ocl):
        """Two in-order queues overlap (unlike one queue)."""

        def body():
            ctx, q1, program = setup_ctx(ocl)
            _, q2 = ocl.clCreateCommandQueue(ctx)
            _, kern = ocl.clCreateKernel(
                program, Kernel("k", nominal_duration=1.0, occupancy=0.3))
            t0 = sim.now
            ocl.clEnqueueNDRangeKernel(q1, kern, 64, 64)
            ocl.clEnqueueNDRangeKernel(q2, kern, 64, 64)
            ocl.clFinish(q1)
            ocl.clFinish(q2)
            return sim.now - t0

        assert run(sim, body) < 1.5


class TestOpenClInterposition:
    def _wrapped(self, sim, ocl, **cfg):
        ipm = Ipm(sim, command="./ocl_app",
                  config=IpmConfig(**cfg), blocking_calls=set())
        return ipm, wrap_opencl(ipm, ocl)

    def test_all_spec_calls_wrapped(self, sim, ocl):
        ipm, w = self._wrapped(sim, ocl)
        for spec in OCL_API:
            assert spec.name in w._wrapped_names, spec.name

    def test_calls_recorded_with_bytes(self, sim, ocl):
        ipm, w = self._wrapped(sim, ocl)

        def body():
            ctx, queue, program = setup_ctx_wrapped(w)
            _, buf = w.clCreateBuffer(ctx, 8192)
            w.clEnqueueWriteBuffer(queue, buf, True, None, 8192)
            _, kern = w.clCreateKernel(program, Kernel("k", nominal_duration=0.1))
            w.clEnqueueNDRangeKernel(queue, kern, 128, 64)
            w.clEnqueueReadBuffer(queue, buf, True, None, 8192)

        run(sim, body)
        task = ipm.finalize()
        sigs = {s.name: s for s, _ in task.table.items()}
        assert sigs["clCreateBuffer"].nbytes == 8192
        assert sigs["clEnqueueWriteBuffer"].nbytes == 8192
        assert ipm.domains["clEnqueueNDRangeKernel"] == "OPENCL"

    def test_kernel_timing_via_event_profiling(self, sim, ocl):
        ipm, w = self._wrapped(sim, ocl)

        def body():
            ctx, queue, program = setup_ctx_wrapped(w)
            _, buf = w.clCreateBuffer(ctx, 4096)
            _, kern = w.clCreateKernel(program, Kernel("stencil", nominal_duration=0.2))
            w.clEnqueueNDRangeKernel(queue, kern, 128, 64)
            w.clEnqueueReadBuffer(queue, buf, True)

        run(sim, body)
        task = ipm.finalize()
        by = task.table.by_name()
        assert ocl_exec_name(0) in by
        assert by[ocl_exec_name(0)].total == pytest.approx(0.2, abs=0.001)
        assert ipm.kernel_details[0].kernel == "stencil"

    def test_host_idle_detected_on_blocking_read(self, sim, ocl):
        ipm, w = self._wrapped(sim, ocl)

        def body():
            ctx, queue, program = setup_ctx_wrapped(w)
            _, buf = w.clCreateBuffer(ctx, 4096)
            _, kern = w.clCreateKernel(program, Kernel("slow", nominal_duration=0.5))
            w.clEnqueueNDRangeKernel(queue, kern, 64, 64)
            w.clEnqueueReadBuffer(queue, buf, True)

        run(sim, body)
        task = ipm.finalize()
        assert task.host_idle_time() == pytest.approx(0.5, abs=0.01)
        # with the wait separated, the read itself is cheap
        by = task.table.by_name()
        assert by["clEnqueueReadBuffer"].total < 0.01

    def test_timer_drains_and_counts(self, sim, ocl):
        ipm, w = self._wrapped(sim, ocl)

        def body():
            ctx, queue, program = setup_ctx_wrapped(w)
            _, kern = w.clCreateKernel(program, Kernel("k", nominal_duration=0.01))
            for _ in range(5):
                w.clEnqueueNDRangeKernel(queue, kern, 64, 64)
            w.clFinish(queue)

        run(sim, body)
        # no blocking read happened: harvest at drain
        assert ipm.ocl_timer.in_flight == 5
        assert ipm.ocl_timer.drain() == 5
        assert ipm.ocl_timer.kernels_timed == 5


def setup_ctx_wrapped(w):
    _, platforms = w.clGetPlatformIDs()
    _, devices = w.clGetDeviceIDs(platforms[0])
    _, ctx = w.clCreateContext(devices[0])
    _, queue = w.clCreateCommandQueue(ctx, devices[0], CL_QUEUE_PROFILING_ENABLE)
    _, program = w.clCreateProgramWithSource(ctx, "__kernel void k(){}")
    w.clBuildProgram(program)
    return ctx, queue, program
