"""Fig. 7: the event ordering of IPM's CUDA monitoring.

The paper's schematic labels the steps (a)–(h); this test drives the
same program (async launch + blocking D2H) and asserts the causal
order of every step using device-side observers and IPM's records:

(a) kernel launched by the app        → host time of cudaLaunch
(b) start event inserted before       → start ts ≤ kernel GPU start
(c) stop event inserted after          → stop ts ≥ kernel GPU end
(d)/(e) kernel executes on the GPU     → profiler interval
(f) blocking memcpy posted right after the async launch
(g) the actual transfer happens after the kernel finished
(h) the KTT entry is harvested and the hash table updated
"""

import numpy as np
import pytest

from repro.core import Ipm, IpmConfig
from repro.cuda import CudaProfiler, Device, GpuTimingModel, Kernel, Runtime, cudaMemcpyKind
from repro.simt import Simulator

K = cudaMemcpyKind


def test_fig7_causal_order():
    sim = Simulator()
    timing = GpuTimingModel()
    timing.context_init_mean = 0.0
    timing.context_init_sigma = 0.0
    timing.kernel_jitter_cv = 0.0
    timing.launch_gap_sigma = 0.0
    dev = Device(sim, timing=timing, rng=np.random.default_rng(0))
    raw = Runtime(sim, [dev])
    ipm = Ipm(sim, config=IpmConfig())
    rt = ipm.wrap_runtime(raw)
    prof = CudaProfiler()
    marks = {}
    host = np.zeros(1000)
    kernel = Kernel("square", nominal_duration=1.0)

    def main():
        err, ptr = raw.cudaMalloc(8000)   # context + memory, unmonitored setup
        prof.attach(raw.context)
        marks["a_launch_posted"] = sim.now
        rt.launch(kernel, 1000, 1, args=(ptr, 1000))
        marks["launch_returned"] = sim.now
        marks["f_memcpy_posted"] = sim.now
        rt.cudaMemcpy(host, ptr, 8000, K.cudaMemcpyDeviceToHost)
        marks["g_memcpy_done"] = sim.now

    sim.spawn(main, name="main")
    sim.run()
    task = ipm.finalize()

    # device-side kernel interval (d)-(e), from the profiler observer
    krec = prof.kernel_records()[0]
    kernel_end = krec.timestamp
    kernel_start = kernel_end - krec.gputime_us * 1e-6

    # (a): the launch returned essentially immediately (asynchronous)
    assert marks["launch_returned"] - marks["a_launch_posted"] < 1e-4
    # (b)/(c): events bracket the kernel — elapsed > kernel duration
    exec_time = task.gpu_exec_time()
    assert exec_time > krec.gputime_us * 1e-6
    assert exec_time < krec.gputime_us * 1e-6 + 1e-3
    # (d): the kernel started only after the launch was posted
    assert kernel_start > marks["a_launch_posted"]
    # (f): the blocking memcpy was posted before the kernel finished ...
    assert marks["f_memcpy_posted"] < kernel_end
    # (g): ... but the host got its data only after the kernel finished
    assert marks["g_memcpy_done"] > kernel_end
    # the separated host idle ≈ the kernel time remaining at (f)
    idle = task.host_idle_time()
    assert idle == pytest.approx(kernel_end - marks["f_memcpy_posted"], rel=0.05)
    # (h): KTT slot harvested inside the D2H wrapper (before main ended)
    assert ipm.ktts[0].in_flight == 0
    assert ipm.ktts[0].kernels_timed == 1
    # and the hash table carries the @-entries
    names = set(task.table.by_name())
    assert "@CUDA_EXEC_STRM00" in names and "@CUDA_HOST_IDLE" in names
