"""Property-based round-trip tests for the XML log and CUBE export."""

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EventSignature,
    JobReport,
    PerfHashTable,
    TaskReport,
    banner,
    job_to_cube,
    job_to_xml,
    xml_to_job,
)
from repro.core.ktt import KernelRecord

_names = st.sampled_from([
    "MPI_Send", "MPI_Allreduce", "cudaMemcpy(D2H)", "cudaMemcpy(H2D)",
    "cudaLaunch", "@CUDA_EXEC_STRM00", "@CUDA_HOST_IDLE", "cublasZgemm",
    "cufftExecZ2Z", "clEnqueueReadBuffer",
])
_regions = st.sampled_from(["ipm_main", "solver", "io_phase"])
_events = st.lists(
    st.tuples(
        _names,
        _regions,
        st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 40)),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                  allow_infinity=False),
    ),
    max_size=40,
)
_kernels = st.lists(
    st.tuples(
        st.sampled_from(["k0", "dgemm_nn_e_kernel", "transpose"]),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=1e-9, max_value=100.0, allow_nan=False),
    ),
    max_size=20,
)


def _build_job(task_specs):
    tasks = []
    domains = {}
    for rank, (events, kernels, mem) in enumerate(task_specs):
        table = PerfHashTable()
        for name, region, nbytes, dur in events:
            table.update(EventSignature(name, region, nbytes), dur)
            base = name.split("(")[0]
            if not base.startswith("@"):
                domains.setdefault(
                    base,
                    "MPI" if base.startswith("MPI") else "CUDA",
                )
        details = [KernelRecord(k, s, d) for k, s, d in kernels]
        tasks.append(TaskReport(
            rank=rank, nranks=len(task_specs), hostname=f"dirac{rank:02d}",
            command="./fuzz", start_time=0.0, stop_time=123.456,
            table=table, kernel_details=details, mem_gb=mem,
            counters={"cuda:::kernels_executed": len(kernels)},
        ))
    return JobReport(tasks=tasks, domains=domains, start_stamp="s", stop_stamp="e")


@settings(max_examples=40, deadline=None)
@given(
    task_specs=st.lists(
        st.tuples(_events, _kernels,
                  st.floats(min_value=0.0, max_value=64.0, allow_nan=False)),
        min_size=1, max_size=4,
    )
)
def test_xml_roundtrip_property(task_specs):
    """Any job report survives XML serialization: same banner, same
    aggregate statistics, same byte attributes and counters."""
    job = _build_job(task_specs)
    back = xml_to_job(job_to_xml(job))
    assert back.ntasks == job.ntasks
    assert back.domains == job.domains
    # the banner — the user-visible artifact — is identical
    assert banner(back, top=None) == banner(job, top=None)
    for orig, parsed in zip(job.tasks, back.tasks):
        orig_entries = {
            (s.name, s.region, s.nbytes): (st_.count, round(st_.total, 6))
            for s, st_ in orig.table.items()
        }
        parsed_entries = {
            (s.name, s.region, s.nbytes): (st_.count, round(st_.total, 6))
            for s, st_ in parsed.table.items()
        }
        assert orig_entries == parsed_entries
        assert parsed.counters == orig.counters
        # kernel totals per (name, stream) preserved
        def agg(details):
            out = {}
            for r in details:
                key = (r.kernel, r.stream_id)
                out[key] = out.get(key, 0.0) + r.duration
            return {k: round(v, 6) for k, v in out.items()}

        assert agg(parsed.kernel_details) == agg(orig.kernel_details)


@settings(max_examples=25, deadline=None)
@given(
    task_specs=st.lists(
        st.tuples(_events, _kernels, st.just(0.0)),
        min_size=1, max_size=3,
    )
)
def test_cube_severity_is_complete_and_consistent(task_specs):
    """The CUBE severity matrix accounts for every function's time on
    every process."""
    job = _build_job(task_specs)
    model = job_to_cube(job)
    assert len(model.processes) == job.ntasks
    for name, stats in job.merged_by_name().items():
        cid = model.cnodes.index(name)
        row = model.severity[("time", cid)]
        assert sum(row) == pytest.approx(stats.total, rel=1e-9, abs=1e-12)
        counts = model.severity[("calls", cid)]
        assert sum(counts) == stats.count
