"""Tests of the wrapper generator itself (paper §III-A, Fig. 2)."""

import pytest

from repro.core import Ipm, IpmConfig
from repro.core.sig import EventSignature
from repro.core.wrapper_gen import WrapperHooks, generate_wrappers
from repro.simt import Simulator


class FakeApi:
    """A library with a mix of callables and data attributes."""

    version = 42

    def __init__(self, sim):
        self.sim = sim
        self.calls = []

    def do_work(self, amount):
        self.calls.append(("do_work", amount))
        self.sim.schedule(0, lambda: None)  # no time passes
        return amount * 2

    def sleepy(self, seconds):
        if self.sim.current is not None:
            self.sim.sleep(seconds)
        return 0

    def not_in_spec(self):
        return "raw"


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def ipm(sim):
    return Ipm(sim, config=IpmConfig(host_idle=False), blocking_calls=set())


def in_proc(sim, fn):
    proc = sim.spawn(fn)
    sim.run()
    return proc.result


class TestGeneration:
    def test_wraps_only_existing_callables(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work", "missing", "version"],
                                  domain="FAKE")
        assert "do_work" in proxy._wrapped_names
        assert "missing" not in proxy._wrapped_names
        assert "version" not in proxy._wrapped_names  # not callable

    def test_passthrough_for_unwrapped(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        assert proxy.version == 42
        assert proxy.not_in_spec() == "raw"
        assert proxy._raw is api

    def test_measured_duration_is_call_only(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["sleepy"], domain="FAKE")
        in_proc(sim, lambda: proxy.sleepy(0.5))
        stats = ipm.table.get(EventSignature("sleepy"))
        assert stats.count == 1
        assert stats.total == pytest.approx(0.5, abs=1e-6)

    def test_return_value_passes_through(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        assert in_proc(sim, lambda: proxy.do_work(21)) == 42

    def test_refiner_sets_suffix_and_bytes(self, sim, ipm):
        api = FakeApi(sim)
        hooks = {"do_work": WrapperHooks(
            refine=lambda a, k, r: ("(BIG)", a[0] * 100))}
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE",
                                  hooks=hooks)
        in_proc(sim, lambda: proxy.do_work(3))
        assert ipm.table.get(EventSignature("do_work(BIG)", nbytes=300)) is not None

    def test_pre_and_post_hooks_ordering(self, sim, ipm):
        api = FakeApi(sim)
        trace = []
        hooks = {"do_work": WrapperHooks(
            pre=lambda a, k: trace.append("pre") or "token",
            post=lambda p, a, k, r: trace.append(("post", p, r)),
        )}
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE",
                                  hooks=hooks)
        in_proc(sim, lambda: proxy.do_work(1))
        assert trace == ["pre", ("post", "token", 2)]

    def test_inactive_ipm_bypasses_everything(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        ipm.active = False
        in_proc(sim, lambda: proxy.do_work(1))
        assert len(ipm.table) == 0
        assert ipm.overhead.calls == 0

    def test_overhead_charged_per_call(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")

        def body():
            for _ in range(10):
                proxy.do_work(1)

        in_proc(sim, body)
        cfg = ipm.config.overhead
        assert ipm.overhead.charged == pytest.approx(10 * (cfg.entry + cfg.exit))

    def test_domain_registration(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        in_proc(sim, lambda: proxy.do_work(1))
        assert ipm.domains["do_work"] == "FAKE"

    def test_bad_linkage_rejected(self, sim, ipm):
        with pytest.raises(ValueError):
            generate_wrappers(ipm, FakeApi(sim), ["do_work"], domain="F",
                              linkage="magic")

    def test_dunder_wrapped_exposes_real(self, sim, ipm):
        """Stdlib decorator convention: inspect.unwrap sees through."""
        import inspect

        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        # bound methods are re-created per access, so compare equality
        assert proxy.do_work.__wrapped__ == api.do_work
        assert inspect.unwrap(proxy.do_work) == api.do_work


class TestSignatureInterning:
    """The fast path: interned signatures + slot hints."""

    def test_steady_state_reuses_one_signature_object(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")

        def body():
            for _ in range(50):
                proxy.do_work(1)

        in_proc(sim, body)
        assert len(ipm.table) == 1
        assert ipm.table.get(EventSignature("do_work")).count == 50
        # exactly one interned (sig, hint) entry exists for the wrapper
        (cache,) = ipm._sig_caches
        assert len(cache) == 1

    def test_region_change_routes_and_invalidates(self, sim, ipm):
        """Events after region_enter/region_exit land under the right
        region, and the transitions clear the interning caches."""
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE")
        (cache,) = ipm._sig_caches

        def body():
            proxy.do_work(1)
            proxy.do_work(1)
            ipm.region_enter("solver")
            assert not cache  # hint cache invalidated on entry
            proxy.do_work(1)
            ipm.region_exit()
            assert not cache  # …and again on exit
            proxy.do_work(1)

        in_proc(sim, body)
        main = ipm.table.get(EventSignature("do_work"))
        solver = ipm.table.get(EventSignature("do_work", region="solver"))
        assert main.count == 3
        assert solver.count == 1

    def test_interning_with_refined_bytes(self, sim, ipm):
        api = FakeApi(sim)
        hooks = {"do_work": WrapperHooks(
            refine=lambda a, k, r: ("(D2H)", a[0]))}
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE",
                                  hooks=hooks)

        def body():
            for _ in range(10):
                proxy.do_work(64)
                proxy.do_work(128)

        in_proc(sim, body)
        assert ipm.table.get(
            EventSignature("do_work(D2H)", nbytes=64)).count == 10
        assert ipm.table.get(
            EventSignature("do_work(D2H)", nbytes=128)).count == 10


class TestStaticLinkage:
    """The --wrap variant (paper: '--wrap foo … __wrap_foo / __real_foo')."""

    def test_wrap_and_real_symbols_exposed(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE",
                                  linkage="static")
        wrap = getattr(proxy, "__wrap_do_work")
        real = getattr(proxy, "__real_do_work")
        assert in_proc(sim, lambda: wrap(5)) == 10
        assert len(ipm.table) == 1          # wrapper recorded
        assert real(5) == 10
        assert len(ipm.table) == 1          # real symbol did not record

    def test_plain_name_resolves_to_wrapper(self, sim, ipm):
        api = FakeApi(sim)
        proxy = generate_wrappers(ipm, api, ["do_work"], domain="FAKE",
                                  linkage="static")
        in_proc(sim, lambda: proxy.do_work(1))
        assert ipm.table.get(EventSignature("do_work")).count == 1

    def test_ipm_config_linkage_flows_through(self, sim):
        from repro.cuda import Device, GpuTimingModel, Runtime
        import numpy as np

        t = GpuTimingModel()
        t.context_init_mean = 0.0
        t.context_init_sigma = 0.0
        dev = Device(sim, timing=t, rng=np.random.default_rng(0))
        rt = Runtime(sim, [dev])
        ipm = Ipm(sim, config=IpmConfig(linkage="static", host_idle=False))
        proxy = ipm.wrap_runtime(rt)
        assert callable(getattr(proxy, "__wrap_cudaMalloc"))
        assert callable(getattr(proxy, "__real_cudaMalloc"))
