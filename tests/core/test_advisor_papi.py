"""Tests for the §VI extensions: the advisor and the PAPI GPU component."""

import numpy as np
import pytest

from repro.core import EventSignature, Ipm, IpmConfig, JobReport, PerfHashTable, TaskReport
from repro.core.advisor import AdvisorConfig, Severity, advise, format_findings
from repro.core.ktt import KernelRecord
from repro.core.papi import (
    CUDA_COMPONENT_EVENTS,
    GpuCounterComponent,
    PAPI_EINVAL,
    PAPI_ENOEVNT,
    PAPI_OK,
    PAPI_VER_CURRENT,
    Papi,
    attach_to_ipm,
)
from repro.cuda import Device, GpuTimingModel, Kernel, Runtime, cudaMemcpyKind
from repro.simt import Simulator

K = cudaMemcpyKind


def make_report(rows, kernel_details=None, wall=100.0, ntasks=2,
                domains=None, mem=0.0):
    tasks = []
    for rank in range(ntasks):
        table = PerfHashTable()
        for name, total, count in rows.get(rank, rows.get("all", [])):
            for _ in range(count - 1):
                table.update(EventSignature(name), 0.0)
            table.update(EventSignature(name), total)
        tasks.append(TaskReport(
            rank=rank, nranks=ntasks, hostname=f"h{rank}", command="x",
            start_time=0.0, stop_time=wall, table=table,
            kernel_details=(kernel_details or {}).get(rank, []),
        ))
    return JobReport(tasks=tasks, domains=domains or {})


class TestAdvisorRules:
    def test_host_idle_rule_fires(self):
        job = make_report(
            {"all": [("@CUDA_HOST_IDLE", 20.0, 5), ("cudaMemcpy(D2H)", 1.0, 5)]},
            domains={"cudaMemcpy": "CUDA"},
        )
        findings = advise(job)
        assert any(f.rule == "host-idle" for f in findings)
        idle = next(f for f in findings if f.rule == "host-idle")
        assert idle.severity == Severity.WARNING
        assert "cudaMemcpyAsync" in idle.recommendation

    def test_host_idle_rule_quiet_below_threshold(self):
        job = make_report({"all": [("@CUDA_HOST_IDLE", 0.1, 1)]},
                          domains={"x": "CUDA"})
        assert not any(f.rule == "host-idle" for f in advise(job))

    def test_sync_wait_rule(self):
        job = make_report(
            {"all": [("cudaThreadSynchronize", 25.0, 100)]},
            domains={"cudaThreadSynchronize": "CUDA"},
        )
        findings = advise(job)
        wait = next(f for f in findings if f.rule == "sync-wait")
        assert "CPU" in wait.recommendation

    def test_kernel_imbalance_rule(self):
        details = {
            0: [KernelRecord("ReduceForces", 0, 10.0)],
            1: [KernelRecord("ReduceForces", 0, 30.0)],
        }
        job = make_report(
            {"all": [("@CUDA_EXEC_STRM00", 20.0, 1)]},
            kernel_details=details, domains={"x": "CUDA"},
        )
        findings = advise(job)
        imb = next(f for f in findings if f.rule == "kernel-imbalance")
        assert "ReduceForces" in imb.title

    def test_thunking_rule(self):
        details = {r: [KernelRecord("zgemm_gpu", 0, 2.0)] for r in range(2)}
        job = make_report(
            {"all": [("cublasSetMatrix", 20.0, 50), ("cublasGetMatrix", 20.0, 50),
                     ("@CUDA_EXEC_STRM00", 2.0, 1)]},
            kernel_details=details,
            domains={"cublasSetMatrix": "CUBLAS", "cublasGetMatrix": "CUBLAS"},
        )
        findings = advise(job)
        thunk = next(f for f in findings if f.rule == "thunking-transfers")
        assert "direct" in thunk.recommendation

    def test_comm_bound_rule_names_top_contributor(self):
        job = make_report(
            {"all": [("MPI_Gather", 30.0, 10), ("MPI_Allreduce", 5.0, 10)]},
            domains={"MPI_Gather": "MPI", "MPI_Allreduce": "MPI"},
        )
        comm = next(f for f in advise(job) if f.rule == "comm-bound")
        assert "MPI_Gather" in comm.evidence

    def test_root_collective_rule(self):
        rows = {
            0: [("MPI_Gather", 40.0, 10)],
            1: [("MPI_Gather", 2.0, 10)],
            2: [("MPI_Gather", 2.0, 10)],
            3: [("MPI_Gather", 2.0, 10)],
        }
        job = make_report(rows, ntasks=4, domains={"MPI_Gather": "MPI"})
        assert any(f.rule == "root-collective" for f in advise(job))

    def test_low_gpu_util_rule(self):
        details = {r: [KernelRecord("k", 0, 0.5)] for r in range(2)}
        job = make_report(
            {"all": [("@CUDA_EXEC_STRM00", 0.5, 10), ("cudaLaunch", 0.1, 10)]},
            kernel_details=details, domains={"cudaLaunch": "CUDA"},
        )
        assert any(f.rule == "low-gpu-util" for f in advise(job))

    def test_healthy_profile_no_findings(self):
        job = make_report(
            {"all": [("cudaLaunch", 0.5, 100), ("@CUDA_EXEC_STRM00", 40.0, 100)]},
            kernel_details={r: [KernelRecord("k", 0, 40.0)] for r in range(2)},
            domains={"cudaLaunch": "CUDA"},
        )
        findings = advise(job)
        assert findings == []
        assert "healthy" in format_findings(findings)

    def test_findings_sorted_by_severity(self):
        job = make_report(
            {"all": [("@CUDA_HOST_IDLE", 20.0, 5),
                     ("cudaThreadSynchronize", 25.0, 5)]},
            domains={"cudaThreadSynchronize": "CUDA"},
        )
        findings = advise(job)
        sevs = [f.severity for f in findings]
        assert sevs == sorted(sevs, reverse=True)

    def test_format_contains_all_parts(self):
        job = make_report({"all": [("@CUDA_HOST_IDLE", 20.0, 5)]},
                          domains={"x": "CUDA"})
        text = format_findings(advise(job))
        assert "[WARNING]" in text and "evidence:" in text


class TestAdvisorOnRealProfiles:
    def test_amber_gets_sync_wait_advice(self):
        """The advisor rediscovers the paper's own §IV-E recommendation."""
        from repro.apps.amber import AmberConfig, amber_app
        from repro.cluster import run_job

        gt = GpuTimingModel()
        gt.context_init_sigma = 0.01
        res = run_job(lambda env: amber_app(env, AmberConfig(steps=20)), 4,
                      ipm_config=IpmConfig(), gpu_timing=gt)
        findings = advise(res.report)
        assert any(f.rule == "sync-wait" for f in findings)
        assert any(f.rule == "kernel-imbalance" for f in findings)

    def test_paratec_gets_thunking_advice(self):
        """…and the §IV-D recommendation for PARATEC."""
        from repro.apps.paratec import ParatecConfig, paratec_app
        from repro.cluster import run_job

        res = run_job(
            lambda env: paratec_app(env, ParatecConfig.tiny()), 4,
            ipm_config=IpmConfig(),
        )
        findings = advise(res.report)
        assert any(f.rule == "thunking-transfers" for f in findings)

    def test_hpl_profile_is_mostly_clean(self):
        from repro.apps.hpl import HplConfig, hpl_app
        from repro.cluster import run_job

        res = run_job(lambda env: hpl_app(env, HplConfig.tiny()), 4,
                      ipm_config=IpmConfig())
        findings = advise(res.report)
        assert not any(f.rule == "host-idle" for f in findings)
        assert not any(f.rule == "thunking-transfers" for f in findings)


class TestPapiComponent:
    def _setup(self):
        sim = Simulator()
        t = GpuTimingModel()
        t.context_init_mean = 0.0
        t.context_init_sigma = 0.0
        t.kernel_jitter_cv = 0.0
        t.launch_gap_sigma = 0.0
        dev = Device(sim, timing=t, rng=np.random.default_rng(0))
        rt = Runtime(sim, [dev])
        return sim, rt

    def test_library_init_version_check(self):
        papi = Papi(GpuCounterComponent())
        assert papi.PAPI_library_init(12345) == PAPI_EINVAL
        assert papi.PAPI_library_init() == PAPI_VER_CURRENT

    def test_eventset_lifecycle(self):
        papi = Papi(GpuCounterComponent())
        papi.PAPI_library_init()
        code, es = papi.PAPI_create_eventset()
        assert code == PAPI_OK
        assert papi.PAPI_add_event(es, "cuda:::kernels_executed") == PAPI_OK
        assert papi.PAPI_add_event(es, "cuda:::bogus") == PAPI_ENOEVNT
        assert papi.PAPI_start(es) == PAPI_OK
        assert papi.PAPI_start(es) == PAPI_EINVAL  # already running
        code, values = papi.PAPI_stop(es)
        assert code == PAPI_OK and values == [0]
        assert papi.PAPI_cleanup_eventset(es) == PAPI_OK

    def test_counters_track_device_activity(self):
        sim, rt = self._setup()
        comp = GpuCounterComponent()

        def body():
            rt.cudaMalloc(64)
            comp.attach(rt.context)
            papi = Papi(comp)
            papi.PAPI_library_init()
            _, es = papi.PAPI_create_eventset()
            for ev in ("cuda:::kernels_executed", "cuda:::kernel_time_ns",
                       "cuda:::memcpy_d2h_bytes"):
                papi.PAPI_add_event(es, ev)
            papi.PAPI_start(es)
            _, ptr = rt.cudaMalloc(4096)
            rt.launch(Kernel("k", nominal_duration=0.010), 32, 32)
            rt.launch(Kernel("k", nominal_duration=0.005), 32, 32)
            host = np.zeros(4096, dtype=np.uint8)
            rt.cudaMemcpy(host, ptr, 4096, K.cudaMemcpyDeviceToHost)
            _, values = papi.PAPI_stop(es)
            return values

        proc = sim.spawn(body)
        sim.run()
        kernels, kernel_ns, d2h = proc.result
        assert kernels == 2
        assert kernel_ns == pytest.approx(15e6, rel=0.01)
        assert d2h == 4096

    def test_delta_semantics(self):
        sim, rt = self._setup()
        comp = GpuCounterComponent()

        def body():
            rt.cudaMalloc(64)
            comp.attach(rt.context)
            rt.launch(Kernel("warmup", nominal_duration=0.01), 1, 1)
            rt.cudaThreadSynchronize()
            papi = Papi(comp)
            papi.PAPI_library_init()
            _, es = papi.PAPI_create_eventset()
            papi.PAPI_add_event(es, "cuda:::kernels_executed")
            papi.PAPI_start(es)  # baseline excludes the warmup kernel
            rt.launch(Kernel("k", nominal_duration=0.01), 1, 1)
            rt.cudaThreadSynchronize()
            _, values = papi.PAPI_read(es)
            return values

        proc = sim.spawn(body)
        sim.run()
        assert proc.result == [1]

    def test_ipm_integration_counters_in_report_and_xml(self, tmp_path):
        sim, rt = self._setup()
        ipm = Ipm(sim, config=IpmConfig(host_idle=False))
        wrapped = ipm.wrap_runtime(rt)

        def body():
            wrapped.cudaMalloc(64)
            attach_to_ipm(ipm, wrapped)
            wrapped.launch(Kernel("k", nominal_duration=0.01), 1, 1)
            wrapped.cudaThreadSynchronize()

        sim.spawn(body)
        sim.run()
        task = ipm.finalize()
        assert task.counters["cuda:::kernels_executed"] == 1
        assert task.counters["cuda:::kernel_time_ns"] > 0
        # counters round-trip through the XML log
        from repro.core import JobReport, read_xml, write_xml

        job = JobReport(tasks=[task], domains=dict(ipm.domains))
        path = str(tmp_path / "p.xml")
        write_xml(job, path)
        back = read_xml(path)
        assert back.tasks[0].counters == task.counters

    def test_occupancy_weighting(self):
        sim, rt = self._setup()
        comp = GpuCounterComponent()

        def body():
            rt.cudaMalloc(64)
            comp.attach(rt.context)
            rt.launch(Kernel("half", nominal_duration=0.010, occupancy=0.5),
                      1, 1)
            rt.cudaThreadSynchronize()

        sim.spawn(body)
        sim.run()
        assert comp.value("cuda:::sm_busy_ns") == pytest.approx(5e6, rel=0.01)
        assert comp.value("cuda:::kernel_time_ns") == pytest.approx(10e6, rel=0.01)
