"""Banner, XML log, ipm_parse, CUBE and HTML output tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import (
    EventSignature,
    Ipm,
    IpmConfig,
    JobReport,
    PerfHashTable,
    TaskReport,
    banner,
    banner_parallel,
    banner_serial,
    job_to_cube,
    job_to_html,
    metrics,
    read_cube,
    read_xml,
    write_cube,
    write_html,
    write_xml,
)
from repro.core.ktt import KernelRecord
from repro.core.parser import main as ipm_parse_main


def make_task(rank=0, nranks=2, wall=45.78, host="dirac18"):
    table = PerfHashTable()
    table.update(EventSignature("@CUDA_EXEC_STRM00"), 16.0 + rank)
    table.update(EventSignature("cudaThreadSynchronize"), 10.0)
    table.update(EventSignature("cudaMemcpy(D2H)", nbytes=4096), 0.5)
    table.update(EventSignature("cudaMemcpy(D2H)", nbytes=4096), 0.3)
    table.update(EventSignature("MPI_Bcast", nbytes=8192), 0.2)
    table.update(EventSignature("@CUDA_HOST_IDLE"), 0.02)
    table.update(EventSignature("cufftExecZ2Z", nbytes=1 << 20), 0.05)
    details = [
        KernelRecord("CalculatePMEOrthogonalNonbondForces", 0, 10.0 + rank),
        KernelRecord("ReduceForces", 0, 5.0),
        KernelRecord("PMEShake", 0, 1.0 + rank),
    ]
    return TaskReport(
        rank=rank,
        nranks=nranks,
        hostname=host,
        command="pmemd.cuda.MPI -O -i mdin",
        start_time=100.0,
        stop_time=100.0 + wall,
        table=table,
        kernel_details=details,
        mem_gb=0.28,
        gflops=0.0,
    )


DOMAINS = {
    "cudaThreadSynchronize": "CUDA",
    "cudaMemcpy": "CUDA",
    "MPI_Bcast": "MPI",
    "cufftExecZ2Z": "CUFFT",
}


@pytest.fixture()
def job():
    return JobReport(
        tasks=[make_task(0), make_task(1, host="dirac19")],
        domains=dict(DOMAINS),
        start_stamp="Tue Sep 28 12:35:09 2010",
        stop_stamp="Tue Sep 28 12:35:55 2010",
    )


class TestBanner:
    def test_serial_layout(self, job):
        text = banner_serial(job.tasks[0])
        assert text.startswith("##IPMv2.0#")
        assert "# command   : pmemd.cuda.MPI" in text
        assert "# wallclock : 45.78" in text
        assert "[time]" in text and "<%wall>" in text
        # sorted by time: the exec pseudo-entry first
        lines = [l for l in text.splitlines() if l.startswith("# @") or
                 l.startswith("# cuda") or l.startswith("# MPI")]
        assert lines[0].startswith("# @CUDA_EXEC_STRM00")

    def test_parallel_layout(self, job):
        text = banner_parallel(job)
        assert "# mpi_tasks : 2 on 2 nodes" in text
        assert "%comm" in text
        assert "# wallclock :" in text
        for domain in ("MPI", "CUDA", "CUFFT"):
            assert f"# {domain:<10s}:" in text
        assert "# %wall     :" in text
        assert "# #calls    :" in text
        assert "@CUDA_EXEC_STRM00" in text

    def test_dispatch(self, job):
        assert "mpi_tasks" in banner(job)
        solo = JobReport(tasks=[make_task(0, nranks=1)], domains={"cudaMemcpy": "CUDA"})
        assert "mpi_tasks" not in banner(solo)

    def test_top_truncation(self, job):
        short = banner_parallel(job, top=1)
        full = banner_parallel(job, top=None)
        assert len(short.splitlines()) < len(full.splitlines())

    def test_percentages_sum_sanely(self, job):
        text = banner_parallel(job, top=None)
        pcts = []
        for line in text.splitlines():
            parts = line.split()
            if line.startswith("# ") and len(parts) == 5 and parts[1][0] not in "#%[<":
                try:
                    pcts.append(float(parts[4]))
                except ValueError:
                    pass
        assert all(0.0 <= p <= 100.0 for p in pcts)


class TestXmlRoundTrip:
    def test_roundtrip_preserves_everything(self, job, tmp_path):
        path = str(tmp_path / "profile.xml")
        write_xml(job, path)
        back = read_xml(path)
        assert back.ntasks == job.ntasks
        assert back.command == job.command
        assert back.domains == job.domains
        assert back.start_stamp == job.start_stamp
        for orig, parsed in zip(job.tasks, back.tasks):
            assert parsed.rank == orig.rank
            assert parsed.hostname == orig.hostname
            assert parsed.wallclock == pytest.approx(orig.wallclock)
            assert parsed.mem_gb == pytest.approx(orig.mem_gb)
            orig_by = orig.table.by_name()
            parsed_by = parsed.table.by_name()
            assert set(orig_by) == set(parsed_by)
            for name in orig_by:
                assert parsed_by[name].count == orig_by[name].count
                assert parsed_by[name].total == pytest.approx(orig_by[name].total)
            # byte attributes survive
            orig_bytes = {(s.name, s.nbytes) for s, _ in orig.table.items()}
            parsed_bytes = {(s.name, s.nbytes) for s, _ in parsed.table.items()}
            assert orig_bytes == parsed_bytes

    def test_banner_regenerable_from_xml(self, job, tmp_path):
        """§II: the parser can re-produce the banner from the log."""
        path = str(tmp_path / "profile.xml")
        write_xml(job, path)
        assert banner_parallel(read_xml(path)) == banner_parallel(job)

    def test_kernel_details_aggregate(self, job, tmp_path):
        path = str(tmp_path / "profile.xml")
        write_xml(job, path)
        back = read_xml(path)
        orig = metrics.kernel_time_by_rank(job)
        parsed = metrics.kernel_time_by_rank(back)
        assert set(orig) == set(parsed)
        for k in orig:
            assert parsed[k] == pytest.approx(orig[k])

    def test_reject_foreign_xml(self, tmp_path):
        path = tmp_path / "bogus.xml"
        path.write_text("<notipm/>")
        with pytest.raises(ValueError):
            read_xml(str(path))


class TestParserCli:
    def test_banner_to_stdout(self, job, tmp_path, capsys):
        path = str(tmp_path / "p.xml")
        write_xml(job, path)
        assert ipm_parse_main([path]) == 0
        out = capsys.readouterr().out
        assert "##IPMv2.0" in out and "mpi_tasks" in out

    def test_html_and_cube_outputs(self, job, tmp_path, capsys):
        xml_path = str(tmp_path / "p.xml")
        html_path = str(tmp_path / "p.html")
        cube_path = str(tmp_path / "p.cube")
        write_xml(job, xml_path)
        assert ipm_parse_main([xml_path, "--html", html_path,
                               "--cube", cube_path]) == 0
        assert "<html>" in open(html_path).read()
        assert ET.parse(cube_path).getroot().tag == "cube"
        assert capsys.readouterr().out == ""  # banner suppressed


class TestCube:
    def test_model_shape(self, job):
        model = job_to_cube(job)
        assert len(model.processes) == 2
        assert "@CUDA_EXEC_STRM00" in model.cnodes
        # per-node system tree: two hosts
        assert {h for h, _ in model.processes} == {"dirac18", "dirac19"}

    def test_severity_values(self, job):
        model = job_to_cube(job)
        assert model.value("gpu_exec", "@CUDA_EXEC_STRM00", 0) == pytest.approx(16.0)
        assert model.value("gpu_exec", "@CUDA_EXEC_STRM00", 1) == pytest.approx(17.0)
        assert model.value("mpi", "MPI_Bcast", 0) == pytest.approx(0.2)
        assert model.value("calls", "cudaMemcpy(D2H)", 0) == 2

    def test_cube_file_roundtrip(self, job, tmp_path):
        path = str(tmp_path / "profile.cube")
        written = write_cube(job, path)
        back = read_cube(path)
        assert back.cnodes == written.cnodes
        assert back.processes == written.processes
        for key, vals in written.severity.items():
            assert back.severity[key] == pytest.approx(vals)

    def test_metric_totals(self, job):
        model = job_to_cube(job)
        assert model.metric_total("gpu_exec") == pytest.approx(33.0)
        assert model.metric_total("gpu_host_idle") == pytest.approx(0.04)


class TestHtml:
    def test_contains_key_metrics(self, job):
        page = job_to_html(job, title="Amber profile")
        assert "Amber profile" in page
        assert "gpu utilization" in page
        assert "CalculatePMEOrthogonalNonbondForces" in page
        assert "MPI_Bcast" in page

    def test_escapes_names(self, job):
        job.tasks[0].table.update(EventSignature("evil<script>"), 1.0)
        page = job_to_html(job)
        assert "evil<script>" not in page
        assert "evil&lt;script&gt;" in page

    def test_write(self, job, tmp_path):
        path = str(tmp_path / "report.html")
        write_html(job, path)
        assert open(path).read().startswith("<!DOCTYPE html>")


class TestMetrics:
    def test_gpu_utilization(self, job):
        util = metrics.gpu_utilization(job)
        expected = 100 * ((16.0 / 45.78) + (17.0 / 45.78)) / 2
        assert util == pytest.approx(expected)

    def test_host_idle_percent(self, job):
        assert metrics.host_idle_percent(job) == pytest.approx(
            100 * 0.02 / 45.78, rel=1e-6
        )

    def test_kernel_share_sums_to_one(self, job):
        shares = metrics.kernel_share(job)
        assert sum(shares.values()) == pytest.approx(1.0)
        top = max(shares, key=shares.get)
        assert top == "CalculatePMEOrthogonalNonbondForces"

    def test_kernel_imbalance(self, job):
        imb = metrics.kernel_imbalance(job)
        shake = imb["PMEShake"]  # 1.0 vs 2.0 across ranks
        assert shake.imbalance == pytest.approx((2.0 - 1.5) / 1.5)

    def test_function_time_stats(self, job):
        st = metrics.function_time_stats(job, "cudaThreadSynchronize")
        assert st.mean == pytest.approx(10.0)
        assert st.tmin == st.tmax == 10.0

    def test_comm_percent(self, job):
        assert metrics.comm_percent(job) == pytest.approx(
            100 * 0.2 / 45.78, rel=1e-6
        )
