"""Tests for the trace ring, timeline rendering, and user regions."""

import pytest

from repro.cluster import run_job
from repro.core import IpmConfig
from repro.core.trace import TraceRecord, TraceRing, render_timeline
from repro.cuda import Kernel, cudaMemcpyKind
from repro.cuda.memory import HostRef

K = cudaMemcpyKind


class TestTraceRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRing(0)

    def test_eviction_keeps_newest(self):
        ring = TraceRing(3)
        for i in range(5):
            ring.add(TraceRecord(float(i), float(i) + 0.5, f"e{i}"))
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [r.name for r in ring.records()] == ["e2", "e3", "e4"]

    def test_records_sorted_by_time(self):
        ring = TraceRing(10)
        ring.add(TraceRecord(2.0, 3.0, "late"))
        ring.add(TraceRecord(0.0, 1.0, "early"))
        assert [r.name for r in ring.records()] == ["early", "late"]


class TestTimelineRendering:
    def test_empty(self):
        assert render_timeline([]) == "(empty trace)"

    def test_lanes_and_bars(self):
        recs = [
            TraceRecord(0.0, 0.5, "cudaLaunch", "host"),
            TraceRecord(0.1, 0.9, "square", "gpu:strm00"),
            TraceRecord(0.9, 1.0, "cudaMemcpy(D2H)", "host"),
        ]
        out = render_timeline(recs, width=60)
        lines = out.splitlines()
        assert lines[0].startswith("timeline:")
        assert any("host" in l for l in lines)
        assert any("gpu:strm00" in l for l in lines)
        assert "square" in out  # label fits inside the bar

    def test_host_lane_first(self):
        recs = [
            TraceRecord(0.0, 1.0, "k", "gpu:strm00"),
            TraceRecord(0.0, 1.0, "call", "host"),
        ]
        out = render_timeline(recs).splitlines()
        host_idx = next(i for i, l in enumerate(out) if "host" in l)
        gpu_idx = next(i for i, l in enumerate(out) if "gpu:" in l)
        assert host_idx < gpu_idx

    def test_overlapping_events_stack_rows(self):
        recs = [
            TraceRecord(0.0, 1.0, "a", "host"),
            TraceRecord(0.2, 0.8, "b", "host"),
        ]
        out = render_timeline(recs, width=40)
        # two rows under the host lane
        assert len(out.splitlines()) >= 3


class TestTracedMonitoring:
    def _app(self, env):
        rt = env.rt
        _, ptr = rt.cudaMalloc(4096)
        rt.launch(Kernel("square", nominal_duration=0.05), 64, 64, args=(ptr,))
        rt.cudaMemcpy(HostRef(4096), ptr, 4096, K.cudaMemcpyDeviceToHost)
        rt.cudaFree(ptr)

    def test_trace_off_by_default(self):
        res = run_job(self._app, 1, ipm_config=IpmConfig())
        assert res.report is not None  # and no trace attribute populated

    def test_trace_records_host_and_gpu_lanes(self):
        ipms = []

        def app(env):
            ipms.append(env.ipm)
            self._app(env)

        # host-idle separation off so the memcpy's traced window shows
        # the raw blocking behaviour (with it on, IPM's pre-probe
        # absorbs the wait before the measured window opens)
        run_job(app, 1, ipm_config=IpmConfig(trace_capacity=128,
                                             host_idle=False))
        trace = ipms[0].trace
        recs = trace.records()
        lanes = {r.lane for r in recs}
        assert "host" in lanes and "gpu:strm00" in lanes
        names = [r.name for r in recs]
        assert "cudaLaunch" in names and "square" in names
        # the Fig. 7 ordering is visible in the trace itself
        launch = next(r for r in recs if r.name == "cudaLaunch")
        kernel = next(r for r in recs if r.name == "square")
        memcpy = next(r for r in recs if r.name == "cudaMemcpy(D2H)")
        assert launch.end <= kernel.begin + 1e-3
        assert memcpy.begin < kernel.end   # posted while kernel runs
        assert memcpy.end >= kernel.end    # completes after it

    def test_timeline_renders_from_real_trace(self):
        ipms = []

        def app(env):
            ipms.append(env.ipm)
            self._app(env)

        run_job(app, 1, ipm_config=IpmConfig(trace_capacity=128))
        out = render_timeline(ipms[0].trace.records(), width=64)
        assert "gpu:strm00" in out


class TestUserRegions:
    def test_pcontrol_scopes_events(self):
        def app(env):
            env.mpi.MPI_Pcontrol(1, "solver")
            env.mpi.MPI_Allreduce(1)
            env.mpi.MPI_Pcontrol(-1)
            env.mpi.MPI_Barrier()

        res = run_job(app, 2, ipm_config=IpmConfig(monitor_cuda=False,
                                                   host_idle=False))
        task = res.report.tasks[0]
        regions = {sig.region for sig, _ in task.table.items()}
        assert regions == {"ipm_main", "solver"}
        by_region = {
            (sig.region, sig.name) for sig, _ in task.table.items()
        }
        assert ("solver", "MPI_Allreduce") in by_region
        assert ("ipm_main", "MPI_Barrier") in by_region

    def test_regions_survive_xml_roundtrip(self, tmp_path):
        from repro.core import read_xml, write_xml

        def app(env):
            env.mpi.MPI_Pcontrol(1, "io_phase")
            env.mpi.MPI_Allreduce(1)
            env.mpi.MPI_Pcontrol(-1)

        res = run_job(app, 2, ipm_config=IpmConfig(monitor_cuda=False,
                                                   host_idle=False))
        path = str(tmp_path / "p.xml")
        write_xml(res.report, path)
        back = read_xml(path)
        regions = {sig.region for sig, _ in back.tasks[0].table.items()}
        assert "io_phase" in regions

    def test_unbalanced_pcontrol_raises(self):
        from repro.simt import ProcessCrashed

        def app(env):
            env.mpi.MPI_Pcontrol(-1)  # exit without enter

        with pytest.raises(ProcessCrashed):
            run_job(app, 1, ipm_config=IpmConfig(monitor_cuda=False,
                                                 host_idle=False))
