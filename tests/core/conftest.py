"""Shared fixtures for IPM core tests."""

import numpy as np
import pytest

from repro.core import Ipm, IpmConfig
from repro.cuda import Device, GpuTimingModel, Kernel, Runtime, cudaMemcpyKind
from repro.simt import Simulator

K = cudaMemcpyKind


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def quiet_timing():
    t = GpuTimingModel()
    t.kernel_jitter_cv = 0.0
    t.launch_gap_sigma = 0.0
    t.context_init_mean = 0.0
    t.context_init_sigma = 0.0
    return t


@pytest.fixture()
def device(sim, quiet_timing):
    return Device(sim, timing=quiet_timing, rng=np.random.default_rng(11))


@pytest.fixture()
def raw_rt(sim, device):
    return Runtime(sim, [device], process_name="test")


def make_ipm(sim, **cfg):
    return Ipm(sim, command="./cuda.ipm", hostname="dirac15",
               config=IpmConfig(**cfg))


def run_square(sim, rt, n=100_000, kernel_time=1.15):
    """The Fig. 3 program against a (possibly wrapped) runtime handle."""
    size = n * 8
    a_h = np.zeros(n)
    square = Kernel("square", nominal_duration=kernel_time)

    def main():
        err, a_d = rt.cudaMalloc(size)
        rt.cudaMemcpy(a_d, a_h, size, K.cudaMemcpyHostToDevice)
        rt.launch(square, n, 1, args=(a_d, n))
        rt.cudaMemcpy(a_h, a_d, size, K.cudaMemcpyDeviceToHost)
        rt.cudaFree(a_d)

    proc = sim.spawn(main, name="main")
    sim.run()
    return proc
