"""Performance data hash table: unit + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import CallStats, PerfHashTable
from repro.core.sig import EventSignature, cuda_exec_name


class TestCallStats:
    def test_update_sequence(self):
        s = CallStats()
        for d in (1.0, 3.0, 2.0):
            s.update(d)
        assert s.count == 3
        assert s.total == 6.0
        assert s.tmin == 1.0 and s.tmax == 3.0
        assert s.avg == 2.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CallStats().update(-1.0)

    def test_empty_avg_zero(self):
        assert CallStats().avg == 0.0

    def test_merge(self):
        a, b = CallStats(), CallStats()
        a.update(1.0)
        b.update(5.0)
        b.update(0.5)
        a.merge(b)
        assert a.count == 3 and a.total == 6.5
        assert a.tmin == 0.5 and a.tmax == 5.0


class TestSignatures:
    def test_equality_and_hash_stability(self):
        a = EventSignature("MPI_Send", nbytes=1024)
        b = EventSignature("MPI_Send", nbytes=1024)
        c = EventSignature("MPI_Send", nbytes=2048)
        assert a == b and a.stable_hash() == b.stable_hash()
        assert a != c

    def test_pseudo_detection(self):
        assert EventSignature("@CUDA_HOST_IDLE").is_pseudo
        assert not EventSignature("cudaMemcpy(D2H)").is_pseudo

    def test_exec_name_format(self):
        assert cuda_exec_name(0) == "@CUDA_EXEC_STRM00"
        assert cuda_exec_name(7) == "@CUDA_EXEC_STRM07"
        assert cuda_exec_name(12) == "@CUDA_EXEC_STRM12"
        with pytest.raises(ValueError):
            cuda_exec_name(-1)


class TestPerfHashTable:
    def test_distinct_bytes_get_distinct_entries(self):
        t = PerfHashTable()
        t.update(EventSignature("MPI_Send", nbytes=100), 1.0)
        t.update(EventSignature("MPI_Send", nbytes=200), 2.0)
        assert len(t) == 2
        assert t.by_name()["MPI_Send"].count == 2
        assert t.by_name()["MPI_Send"].total == 3.0

    def test_get_absent(self):
        t = PerfHashTable()
        assert t.get(EventSignature("nothing")) is None

    def test_small_capacity_collisions_still_correct(self):
        t = PerfHashTable(capacity=4)
        sigs = [EventSignature(f"f{i}") for i in range(4)]
        for i, s in enumerate(sigs):
            t.update(s, float(i))
        for i, s in enumerate(sigs):
            assert t.get(s).total == float(i)
        assert t.collisions > 0 or True  # collisions depend on hashes

    def test_overflow_goes_to_overflow_area(self):
        t = PerfHashTable(capacity=2)
        for i in range(5):
            t.update(EventSignature(f"f{i}"), 1.0)
        assert len(t) == 5
        assert t.overflowed == 3
        for i in range(5):
            assert t.get(EventSignature(f"f{i}")) is not None

    def test_total_time_prefix(self):
        t = PerfHashTable()
        t.update(EventSignature("@CUDA_EXEC_STRM00"), 1.0)
        t.update(EventSignature("@CUDA_EXEC_STRM01"), 2.0)
        t.update(EventSignature("cudaMemcpy(D2H)"), 4.0)
        assert t.total_time("@CUDA_EXEC_STRM") == 3.0
        assert t.total_time() == 7.0

    def test_total_bytes(self):
        t = PerfHashTable()
        t.update(EventSignature("MPI_Send", nbytes=100), 1.0)
        t.update(EventSignature("MPI_Send", nbytes=100), 1.0)
        t.update(EventSignature("MPI_Send", nbytes=50), 1.0)
        assert t.total_bytes("MPI_Send") == 250

    def test_merge_tables(self):
        a, b = PerfHashTable(), PerfHashTable()
        a.update(EventSignature("x"), 1.0)
        b.update(EventSignature("x"), 2.0)
        b.update(EventSignature("y"), 3.0)
        a.merge(b)
        assert a.get(EventSignature("x")).total == 3.0
        assert a.get(EventSignature("y")).total == 3.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            PerfHashTable(capacity=0)

    def test_get_does_not_inflate_collisions(self):
        """collisions counts insert-path probe steps only — report
        passes (get/by_name/total_time) must not skew the stat the
        ablation benchmarks read."""
        t = PerfHashTable(capacity=8)
        for i in range(6):
            t.update(EventSignature(f"f{i}"), 1.0)
        inserted = t.collisions
        for _ in range(50):
            for i in range(6):
                t.get(EventSignature(f"f{i}"))
            t.get(EventSignature("absent"))
            t.by_name()
            t.total_time()
        assert t.collisions == inserted

    def test_locate_and_hinted_update(self):
        t = PerfHashTable(capacity=8)
        sig = EventSignature("MPI_Send", nbytes=64)
        t.update(sig, 1.0)
        hint = t.locate(sig)
        assert hint is not None and hint >= 0
        stats = t.update(sig, 2.0, hint)
        assert stats.count == 2 and stats.total == 3.0
        # a wrong hint falls back to the probing path
        wrong = (hint + 1) % t.capacity
        assert t.update(sig, 4.0, wrong).count == 3
        assert t.locate(EventSignature("absent")) is None

    def test_locate_and_hinted_update_in_overflow(self):
        t = PerfHashTable(capacity=2)
        sigs = [EventSignature(f"f{i}") for i in range(4)]
        for s in sigs:
            t.update(s, 1.0)
        spilled = [s for s in sigs if t.locate(s) == PerfHashTable.OVERFLOW]
        assert len(spilled) == 2
        for s in spilled:
            t.update(s, 2.0, PerfHashTable.OVERFLOW)
            assert t.get(s).total == 3.0

    def test_aggregate_caches_track_mutations(self):
        t = PerfHashTable()
        t.update(EventSignature("a", nbytes=8), 1.0)
        assert t.by_name()["a"].total == 1.0
        assert t.total_time() == 1.0
        assert t.total_bytes() == 8
        t.update(EventSignature("a", nbytes=8), 2.0)
        assert t.by_name()["a"].total == 3.0
        assert t.total_time() == 3.0
        assert t.total_bytes() == 16
        other = PerfHashTable()
        other.update(EventSignature("b"), 5.0)
        t.merge(other)
        assert t.total_time() == 8.0
        assert "b" in t.by_name()


class TestMergeOverflow:
    """Cross-rank merge across the slot/overflow boundary."""

    def _stats_of(self, durations):
        s = CallStats()
        for d in durations:
            s.update(d)
        return s

    def test_merge_spills_to_overflow_when_full(self):
        dst = PerfHashTable(capacity=2)
        dst.update(EventSignature("a"), 1.0)
        dst.update(EventSignature("b"), 1.0)
        src = PerfHashTable(capacity=8)
        src.update(EventSignature("c"), 3.0)
        src.update(EventSignature("d"), 4.0)
        dst.merge(src)
        assert len(dst) == 4
        assert dst.overflowed == 2
        assert dst.locate(EventSignature("c")) == PerfHashTable.OVERFLOW
        assert dst.get(EventSignature("c")).total == 3.0
        assert dst.get(EventSignature("d")).total == 4.0

    def test_merge_overflow_entries_land_in_slots(self):
        src = PerfHashTable(capacity=2)
        for i in range(5):
            src.update(EventSignature(f"f{i}"), float(i))
        assert src.overflowed == 3
        dst = PerfHashTable(capacity=64)
        dst.merge(src)
        assert len(dst) == 5
        assert dst.overflowed == 0
        for i in range(5):
            loc = dst.locate(EventSignature(f"f{i}"))
            assert loc is not None and loc >= 0
            assert dst.get(EventSignature(f"f{i}")).total == float(i)

    def test_merge_stats_correct_across_areas(self):
        """Counts/totals/min/max survive slot→slot, slot→overflow and
        overflow→slot merges exactly."""
        a = PerfHashTable(capacity=2)
        b = PerfHashTable(capacity=2)
        durations_a = {"x": [1.0, 5.0], "y": [2.0], "z": [0.25]}
        durations_b = {"x": [0.5], "z": [8.0], "w": [3.0]}
        for name, ds in durations_a.items():
            for d in ds:
                a.update(EventSignature(name), d)
        for name, ds in durations_b.items():
            for d in ds:
                b.update(EventSignature(name), d)
        a.merge(b)
        for name in ("x", "y", "z", "w"):
            expect = self._stats_of(
                durations_a.get(name, []) + durations_b.get(name, [])
            )
            got = a.get(EventSignature(name))
            assert got is not None
            assert got.count == expect.count
            assert got.total == pytest.approx(expect.total)
            assert got.tmin == expect.tmin and got.tmax == expect.tmax
        assert len(a) == 4


@settings(max_examples=80, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d", "e", "f", "g", "h"]),
            st.sampled_from([None, 64, 1024]),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        max_size=200,
    ),
    capacity=st.sampled_from([2, 7, 64, 8192]),
)
def test_table_matches_reference_dict(events, capacity):
    """Property: the open-addressing table agrees with a plain dict
    regardless of capacity/collision/overflow behaviour."""
    table = PerfHashTable(capacity=capacity)
    reference = {}
    for name, nbytes, dur in events:
        sig = EventSignature(name, nbytes=nbytes)
        table.update(sig, dur)
        ref = reference.setdefault(sig, CallStats())
        ref.update(dur)
    assert len(table) == len(reference)
    for sig, ref in reference.items():
        got = table.get(sig)
        assert got is not None
        assert got.count == ref.count
        assert got.total == pytest.approx(ref.total)
        assert got.tmin == ref.tmin and got.tmax == ref.tmax
    # merged-by-name view is consistent too
    by_name = table.by_name()
    assert sum(s.count for s in by_name.values()) == len(events)
