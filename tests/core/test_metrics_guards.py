"""Degenerate-input guards on the derived metrics.

A job report with zero tasks (every rank filtered out, or a report
assembled from an empty selection) used to crash ``gpu_utilization``
and ``host_idle_percent`` with ZeroDivisionError.
"""

from repro.analysis.histogram import compare_ensembles
from repro.analysis.scaling import ScalingPoint, scaling_speedups
from repro.core.hashtable import PerfHashTable
from repro.core.metrics import (
    function_time_stats,
    gpu_utilization,
    host_idle_percent,
    kernel_imbalance,
)
from repro.core.report import JobReport, TaskReport


def _drained_job():
    # JobReport refuses to be *constructed* empty, but filtering can
    # drain the task list afterwards — the metrics must not divide by it
    task = TaskReport(
        rank=0,
        nranks=1,
        hostname="dirac01",
        command="./a.out",
        start_time=0.0,
        stop_time=1.0,
        table=PerfHashTable(),
    )
    job = JobReport(tasks=[task], domains={})
    job.tasks.clear()
    return job


def test_zero_task_job_yields_zero_not_crash():
    job = _drained_job()
    assert gpu_utilization(job) == 0.0
    assert host_idle_percent(job) == 0.0


def test_imbalance_stats_survive_an_empty_task_list():
    job = _drained_job()
    stat = function_time_stats(job, "cudaMemcpy")
    assert (stat.mean, stat.tmin, stat.tmax) == (0.0, 0.0, 0.0)
    assert kernel_imbalance(job) == {}


def test_speedup_guards():
    assert scaling_speedups([]) == {}
    pts = [
        ScalingPoint(nprocs=1, wallclock=10.0),
        ScalingPoint(nprocs=4, wallclock=0.0),  # run killed by a fault
        ScalingPoint(nprocs=2, wallclock=5.0),
    ]
    s = scaling_speedups(pts)
    assert s[1] == 1.0
    assert s[2] == 2.0
    assert s[4] == 0.0  # not a ZeroDivisionError


def test_ensemble_stats_with_a_degenerate_baseline():
    cmp = compare_ensembles([1.0, 2.0], [0.0, 0.0])
    assert cmp.without_ipm.mean == 0.0
    assert cmp.dilatation == 0.0
