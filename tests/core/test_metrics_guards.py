"""Degenerate-input guards on the derived metrics.

A job report with zero tasks (every rank filtered out, or a report
assembled from an empty selection) used to crash ``gpu_utilization``
and ``host_idle_percent`` with ZeroDivisionError.
"""

from repro.core.hashtable import PerfHashTable
from repro.core.metrics import gpu_utilization, host_idle_percent
from repro.core.report import JobReport, TaskReport


def test_zero_task_job_yields_zero_not_crash():
    # JobReport refuses to be *constructed* empty, but filtering can
    # drain the task list afterwards — the metrics must not divide by it
    task = TaskReport(
        rank=0,
        nranks=1,
        hostname="dirac01",
        command="./a.out",
        start_time=0.0,
        stop_time=1.0,
        table=PerfHashTable(),
    )
    job = JobReport(tasks=[task], domains={})
    job.tasks.clear()
    assert gpu_utilization(job) == 0.0
    assert host_idle_percent(job) == 0.0
