"""Slab vs. object table backends: byte-identical reports, by property.

The slab-backed :class:`~repro.core.hashtable.PerfHashTable` is a pure
performance representation change — every observable (CallStats views,
iteration order, merge results, pickles, XML) must match the legacy
object-backed table exactly.  These tests drive *randomized* event
streams (seeded, so failures reproduce) through the real wrapper
generator under both backends and require the resulting
:class:`~repro.core.report.JobReport` pickles to be byte-identical.

The object backend is selected the same way users select it: the
``IPM_REPRO_TABLE=object`` escape hatch read by
:func:`~repro.core.hashtable.make_table` at Ipm construction time.
"""

import os
import random

import pytest

from repro.core import Ipm, IpmConfig, table_backend
from repro.core.report import JobReport
from repro.core.wrapper_gen import WrapperHooks, generate_wrappers
from repro.simt import Simulator
from repro.sweep.cache import pickle_report


class StreamApi:
    """A fake library whose calls burn virtual time and move bytes."""

    def __init__(self, sim):
        self.sim = sim

    def _work(self, seconds):
        if seconds > 0 and self.sim.current is not None:
            self.sim.sleep(seconds)

    def alpha(self, seconds):
        self._work(seconds)
        return 0

    def beta(self, seconds, tag=None):
        self._work(seconds)
        return tag

    def send(self, nbytes, direction, seconds):
        self._work(seconds)
        return nbytes


def _run_stream(seed: int, events: int = 300) -> bytes:
    """One randomized monitored run -> pickled JobReport bytes.

    The stream mixes plain calls, kwargs calls, refined calls (suffix +
    byte count, several distinct signatures) and region transitions —
    jointly covering every wrapper variant the generator emits.
    """
    sim = Simulator()
    ipm = Ipm(sim, config=IpmConfig(host_idle=False), blocking_calls=set())
    api = StreamApi(sim)
    hooks = {
        "send": WrapperHooks(
            refine=lambda a, k, r: (f"({a[1]})", a[0]),
        )
    }
    proxy = generate_wrappers(
        ipm, api, ["alpha", "beta", "send"], domain="FAKE", hooks=hooks
    )
    rng = random.Random(seed)

    def body():
        depth = 0
        for _ in range(events):
            op = rng.randrange(10)
            dur = rng.choice((0.0, 1e-4, 2e-4, 5e-4))
            if op < 4:
                proxy.alpha(dur)
            elif op < 6:
                proxy.beta(dur)
            elif op < 7:
                proxy.beta(dur, tag=rng.randrange(3))
            elif op < 9:
                proxy.send(
                    rng.choice((64, 4096, 1 << 20)),
                    rng.choice(("H2D", "D2H")),
                    dur,
                )
            elif depth == 0 and rng.random() < 0.5:
                ipm.region_enter(rng.choice(("solver", "io")))
                depth = 1
            elif depth:
                ipm.region_exit()
                depth = 0
        while depth:
            ipm.region_exit()
            depth -= 1

    sim.spawn(body)
    sim.run()
    task = ipm.finalize()
    report = JobReport(
        tasks=[task],
        domains=dict(ipm.domains),
        start_stamp="t=0.000",
        stop_stamp=f"t={sim.now:.3f}",
    )
    return pickle_report(report)


def _with_backend(backend, fn):
    """Run ``fn`` with ``IPM_REPRO_TABLE`` forced to ``backend``."""
    saved = os.environ.get("IPM_REPRO_TABLE")
    try:
        if backend is None:
            os.environ.pop("IPM_REPRO_TABLE", None)
        else:
            os.environ["IPM_REPRO_TABLE"] = backend
        return fn()
    finally:
        if saved is None:
            os.environ.pop("IPM_REPRO_TABLE", None)
        else:
            os.environ["IPM_REPRO_TABLE"] = saved


class TestBackendParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_produce_identical_report_bytes(self, seed):
        slab = _with_backend(None, lambda: _run_stream(seed))
        legacy = _with_backend("object", lambda: _run_stream(seed))
        assert slab == legacy

    def test_env_escape_hatch_selects_the_object_backend(self):
        assert _with_backend(None, table_backend) == "array"
        assert _with_backend("object", table_backend) == "object"

    def test_parity_survives_a_merge_heavy_stream(self):
        """Many distinct refined signatures force slab overflow/merge
        paths; parity must hold there too."""
        slab = _with_backend(None, lambda: _run_stream(99, events=1500))
        legacy = _with_backend("object", lambda: _run_stream(99, events=1500))
        assert slab == legacy
