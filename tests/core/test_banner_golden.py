"""Golden-format regression test for the banner layout.

The banner's exact column layout is a user-facing contract (people
parse these reports with awk); this test pins it down for a canned
report so formatting regressions are caught precisely.
"""

from repro.core import EventSignature, JobReport, PerfHashTable, TaskReport
from repro.core.banner import banner_serial


def _canned_task():
    table = PerfHashTable()
    entries = [
        ("cudaMalloc", 2.43, 1),
        ("cudaMemcpy(D2H)", 1.16, 1),
        ("cudaMemcpy(H2D)", 0.01, 1),
        ("cudaSetupArgument", 0.0, 2),
        ("cudaFree", 0.0, 1),
        ("cudaLaunch", 0.0, 1),
        ("cudaConfigureCall", 0.0, 1),
    ]
    for name, total, count in entries:
        for i in range(count):
            table.update(
                EventSignature(name), total if i == 0 else 0.0
            )
    return TaskReport(
        rank=0, nranks=1, hostname="dirac15", command="./cuda.ipm",
        start_time=0.0, stop_time=3.59, table=table,
    )


EXPECTED = """\
##IPMv2.0##################################################################
#
# command   : ./cuda.ipm
# host      : dirac15
# wallclock : 3.59
#
#                                 [time]      [count]    <%wall>
# cudaMalloc                        2.43            1      67.69
# cudaMemcpy(D2H)                   1.16            1      32.31
# cudaMemcpy(H2D)                   0.01            1       0.28
# cudaConfigureCall                 0.00            1       0.00
# cudaFree                          0.00            1       0.00
# cudaLaunch                        0.00            1       0.00
# cudaSetupArgument                 0.00            2       0.00
#
###########################################################################"""


def test_fig4_banner_golden():
    """The Fig. 4 scenario renders to the pinned layout exactly."""
    assert banner_serial(_canned_task()) == EXPECTED


def test_golden_matches_paper_shape():
    """Sanity on the pinned values themselves: the Fig. 4 story —
    cudaMalloc ≈ 67.7 %wall, D2H ≈ 32.3 %, everything else ≈ 0."""
    lines = EXPECTED.splitlines()
    rows = [l.split() for l in lines if l.startswith("# cuda")]
    by = {r[1]: (float(r[2]), int(r[3]), float(r[4])) for r in rows}
    assert by["cudaMalloc"][2] > 60
    assert by["cudaMemcpy(D2H)"][2] > 30
    assert by["cudaSetupArgument"][1] == 2
