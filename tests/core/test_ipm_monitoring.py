"""Integration tests of IPM's monitoring mechanisms (paper §III)."""

import numpy as np
import pytest

from repro.core import (
    CUDA_HOST_IDLE,
    EventSignature,
    Ipm,
    IpmConfig,
    blocking_wrapper_names,
    identify_blocking_calls,
)
from repro.cuda import Device, Kernel, Runtime, cudaMemcpyKind
from repro.simt import Simulator

from tests.core.conftest import make_ipm, run_square

K = cudaMemcpyKind


class TestFig456Progression:
    """The three monitoring levels of Figs. 4 → 5 → 6."""

    def _names(self, task):
        return set(task.table.by_name().keys())

    def test_fig4_host_timing_only(self, sim, raw_rt):
        ipm = make_ipm(sim, kernel_timing=False, host_idle=False)
        rt = ipm.wrap_runtime(raw_rt)
        run_square(sim, rt)
        task = ipm.finalize()
        names = self._names(task)
        # the Fig. 4 rows
        for expected in ("cudaMalloc", "cudaMemcpy(D2H)", "cudaMemcpy(H2D)",
                         "cudaSetupArgument", "cudaFree", "cudaLaunch",
                         "cudaConfigureCall"):
            assert expected in names, expected
        # no GPU pseudo-entries at this level
        assert not any(n.startswith("@") for n in names)
        # blocking D2H absorbed the kernel: ≫ H2D for same size
        by = task.table.by_name()
        assert by["cudaMemcpy(D2H)"].total > 50 * by["cudaMemcpy(H2D)"].total
        assert by["cudaSetupArgument"].count == 2

    def test_fig5_kernel_timing(self, sim, raw_rt):
        ipm = make_ipm(sim, kernel_timing=True, host_idle=False)
        rt = ipm.wrap_runtime(raw_rt)
        run_square(sim, rt)
        task = ipm.finalize()
        by = task.table.by_name()
        assert "@CUDA_EXEC_STRM00" in by
        # event-bracketed kernel time ≈ nominal 1.15 s (plus µs overheads)
        assert by["@CUDA_EXEC_STRM00"].total == pytest.approx(1.15, abs=0.001)
        assert "@CUDA_HOST_IDLE" not in by

    def test_fig6_host_idle(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)
        run_square(sim, rt)
        task = ipm.finalize()
        by = task.table.by_name()
        assert "@CUDA_HOST_IDLE" in by
        # the idle count is 1: only the D2H behind the kernel qualifies
        assert by["@CUDA_HOST_IDLE"].count == 1
        # idle ≈ exec (Fig. 6 shows 1.15 vs 1.15)
        assert by["@CUDA_HOST_IDLE"].total == pytest.approx(
            by["@CUDA_EXEC_STRM00"].total, rel=0.01
        )
        # with the wait separated out, the D2H itself is now cheap (Fig. 6)
        assert by["cudaMemcpy(D2H)"].total < 0.01

    def test_kernel_details_recorded(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)
        run_square(sim, rt)
        ipm.finalize()
        assert len(ipm.kernel_details) == 1
        rec = ipm.kernel_details[0]
        assert rec.kernel == "square" and rec.stream_id == 0


class TestBlockingCallIdentification:
    def test_memset_excluded(self):
        blocking = identify_blocking_calls(force=True)
        assert "cudaMemset" not in blocking
        assert "cudaMemcpyAsync" not in blocking

    def test_all_sync_memcpy_variants_included(self):
        blocking = identify_blocking_calls()
        for name in ("cudaMemcpy(H2D)", "cudaMemcpy(D2H)", "cudaMemcpy(D2D)",
                     "cudaMemcpyToSymbol", "cudaMemcpyFromSymbol"):
            assert name in blocking, name

    def test_wrapper_name_collapse(self):
        names = blocking_wrapper_names({"cudaMemcpy(D2H)", "cudaMemcpy(H2D)",
                                        "cudaMemcpyToSymbol"})
        assert names == {"cudaMemcpy", "cudaMemcpyToSymbol"}

    def test_cached_between_calls(self):
        a = identify_blocking_calls()
        b = identify_blocking_calls()
        assert a == b and a is not b  # copies of the cached set


class TestKernelTimingTable:
    def test_slot_reuse_many_launches(self, sim, raw_rt):
        ipm = make_ipm(sim, ktt_capacity=4)
        rt = ipm.wrap_runtime(raw_rt)
        k = Kernel("k", nominal_duration=0.001)
        host = np.zeros(8)

        def main():
            err, ptr = rt.cudaMalloc(64)
            for _ in range(20):
                rt.launch(k, 1, 1)
                rt.cudaMemcpy(host, ptr, 64, K.cudaMemcpyDeviceToHost)

        sim.spawn(main, name="main")
        sim.run()
        ipm.finalize()
        ktt = ipm.ktts[0]
        assert ktt.kernels_timed == 20
        assert ktt.dropped == 0

    def test_full_table_forces_check_then_drops(self, sim, raw_rt):
        ipm = make_ipm(sim, ktt_capacity=2)
        rt = ipm.wrap_runtime(raw_rt)
        k = Kernel("slow", nominal_duration=10.0)

        def main():
            rt.cudaMalloc(64)
            for _ in range(5):  # all pending: no D2H, kernels serialized
                rt.launch(k, 1, 1)
            rt.cudaThreadSynchronize()

        sim.spawn(main, name="main")
        sim.run()
        ipm.finalize()
        ktt = ipm.ktts[0]
        # capacity 2: some launches could not be tracked...
        assert ktt.dropped >= 1
        # ...but drain at finalize harvested the tracked ones
        assert ktt.kernels_timed + ktt.dropped == 5

    def test_drain_at_finalize(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)

        def main():
            rt.cudaMalloc(64)
            rt.launch(Kernel("tail", nominal_duration=0.5), 1, 1)
            # no D2H follows: only finalize() can harvest this kernel

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        assert task.gpu_exec_time() == pytest.approx(0.5, abs=0.001)

    def test_every_call_policy_harvests_without_d2h(self, sim, raw_rt):
        ipm = make_ipm(sim, ktt_policy="on_every_call")
        rt = ipm.wrap_runtime(raw_rt)

        def main():
            rt.cudaMalloc(64)
            rt.launch(Kernel("k", nominal_duration=0.1), 1, 1)
            rt.cudaThreadSynchronize()
            # the next call's post-hook harvests — no D2H needed
            rt.cudaGetLastError()

        sim.spawn(main, name="main")
        sim.run()
        assert ipm.ktts[0].kernels_timed == 1
        ipm.finalize()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            IpmConfig(ktt_policy="sometimes")

    def test_streams_reported_separately(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)

        def main():
            rt.cudaMalloc(64)
            _, st = rt.cudaStreamCreate()
            rt.launch(Kernel("a", nominal_duration=0.2), 1, 1)          # stream 0
            rt.launch(Kernel("b", nominal_duration=0.3), 1, 1, stream=st)
            rt.cudaThreadSynchronize()

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        streams = {r.stream_id for r in ipm.kernel_details}
        assert 0 in streams and len(streams) == 2
        names = set(task.table.by_name())
        assert sum(1 for n in names if n.startswith("@CUDA_EXEC_STRM")) == 2


class TestOverheadAccounting:
    def test_monitoring_dilates_runtime_slightly(self, sim, quiet_timing):
        """IPM on vs off: dilatation exists but is small (Fig. 8's premise)."""

        def run_once(monitored: bool) -> float:
            local = Simulator()
            dev = Device(local, timing=quiet_timing, rng=np.random.default_rng(5))
            rt = Runtime(local, [dev])
            ipm = None
            if monitored:
                ipm = Ipm(local, config=IpmConfig())
                rt = ipm.wrap_runtime(rt)
            proc = run_square(local, rt, kernel_time=0.1)
            if ipm:
                ipm.finalize()
            return proc.finished_at - proc.started_at

        plain = run_once(False)
        monitored = run_once(True)
        assert monitored > plain
        assert (monitored - plain) / plain < 0.01  # well under 1 %

    def test_overhead_charged_is_positive_and_bounded(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)
        run_square(sim, rt)
        task = ipm.finalize()
        assert ipm.overhead.charged > 0
        assert ipm.overhead.charged < 0.01 * task.wallclock

    def test_inactive_ipm_records_nothing(self, sim, raw_rt):
        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)
        ipm.active = False
        run_square(sim, rt)
        assert len(ipm.table) == 0


class TestRegions:
    def test_region_scoping(self, sim, raw_rt):
        ipm = make_ipm(sim, kernel_timing=False, host_idle=False)
        rt = ipm.wrap_runtime(raw_rt)

        def main():
            rt.cudaMalloc(64)
            ipm.region_enter("solver")
            rt.cudaMalloc(64)
            ipm.region_exit()

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        regions = {sig.region for sig, _ in task.table.items()}
        assert regions == {"ipm_main", "solver"}

    def test_unbalanced_region_exit(self, sim):
        ipm = make_ipm(sim, host_idle=False)
        with pytest.raises(RuntimeError):
            ipm.region_exit()


class TestDriverWrapping:
    def test_driver_calls_recorded(self, sim, raw_rt):
        from repro.cuda import Driver

        ipm = make_ipm(sim)
        drv = ipm.wrap_driver(Driver(raw_rt))

        def main():
            drv.cuInit()
            drv.cuCtxCreate()
            err, ptr = drv.cuMemAlloc(4096)
            drv.cuMemcpyHtoD(ptr, None, 4096)
            k = Kernel("dk", nominal_duration=0.25)
            drv.cuFuncSetBlockShape(k, 64, 1, 1)
            drv.cuLaunchGrid(k, 8, 1)
            drv.cuMemcpyDtoH(None, ptr, 4096)
            drv.cuMemFree(ptr)

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        by = task.table.by_name()
        for name in ("cuInit", "cuMemAlloc", "cuMemcpyHtoD", "cuLaunchGrid",
                     "cuMemcpyDtoH", "cuMemFree"):
            assert name in by, name
        # driver-side kernel timing works too
        assert task.gpu_exec_time() == pytest.approx(0.25, abs=0.001)
        # host idle identified on the blocking DtoH
        assert by[CUDA_HOST_IDLE.split("(")[0]].total > 0.2


class TestLibraryWrapping:
    def test_cublas_records_bytes(self, sim, raw_rt):
        from repro.libs import Cublas

        ipm = make_ipm(sim)
        rt = ipm.wrap_runtime(raw_rt)
        cb = ipm.wrap_cublas(Cublas(raw_rt))

        def main():
            cb.cublasInit()
            st, ptr = cb.cublasAlloc(1000 * 1000, 8)
            cb.cublasSetMatrix(1000, 1000, 8, None, ptr)
            cb.cublasDgemm("N", "N", 1000, 1000, 1000)
            cb.cublasGetMatrix(1000, 1000, 8, ptr)
            cb.cublasFree(ptr)

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        sigs = {sig.name: sig for sig, _ in task.table.items()}
        assert sigs["cublasSetMatrix"].nbytes == 8_000_000
        assert sigs["cublasDgemm"].nbytes == 8 * 3 * 1000 * 1000
        assert ipm.domains["cublasDgemm"] == "CUBLAS"

    def test_cufft_wrapped(self, sim, raw_rt):
        from repro.libs import Cufft

        ipm = make_ipm(sim)
        ft = ipm.wrap_cufft(Cufft(raw_rt))

        def main():
            res, plan = ft.cufftPlan3d(32, 32, 32, "Z2Z")
            ft.cufftExecZ2Z(plan)
            raw_rt.cudaThreadSynchronize()
            ft.cufftDestroy(plan)

        sim.spawn(main, name="main")
        sim.run()
        task = ipm.finalize()
        by = task.table.by_name()
        assert "cufftPlan3d" in by and "cufftExecZ2Z" in by
        assert ipm.domains["cufftExecZ2Z"] == "CUFFT"

    def test_mpi_wrapped_with_sizes(self, sim):
        from repro.mpi import CommWorld

        world = CommWorld(sim, 2)
        ipms = [Ipm(sim, rank=r, nranks=2, config=IpmConfig(host_idle=False))
                for r in range(2)]
        comms = [ipms[r].wrap_mpi(world.rank_comm(r)) for r in range(2)]
        payload = np.zeros(1000, dtype=np.float64)

        def rank0():
            comms[0].MPI_Send(payload, dest=1)
            comms[0].MPI_Barrier()

        def rank1():
            comms[1].MPI_Recv(source=0)
            comms[1].MPI_Barrier()

        sim.spawn(rank0, name="r0")
        sim.spawn(rank1, name="r1")
        sim.run()
        t0, t1 = ipms[0].finalize(), ipms[1].finalize()
        send_sig = next(sig for sig, _ in t0.table.items() if sig.name == "MPI_Send")
        recv_sig = next(sig for sig, _ in t1.table.items() if sig.name == "MPI_Recv")
        assert send_sig.nbytes == 8000 and recv_sig.nbytes == 8000
        assert "MPI_Barrier" in t0.table.by_name()
        assert ipms[0].domains["MPI_Send"] == "MPI"
