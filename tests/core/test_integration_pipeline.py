"""End-to-end pipeline integration: run → XML → ipm_parse → outputs,
performance-model projections, and a large-job smoke test."""

import pytest

from repro.apps.hpl import HplConfig, hpl_app
from repro.cluster import run_job
from repro.core import IpmConfig, banner_parallel, metrics, read_xml, write_xml
from repro.core.advisor import model_projections
from repro.core.parser import main as ipm_parse_main


class TestFullPipeline:
    def test_real_run_through_ipm_parse(self, tmp_path, capsys):
        """A real monitored job's XML log regenerates the identical
        banner through the CLI, and converts to HTML + CUBE."""
        res = run_job(lambda env: hpl_app(env, HplConfig.tiny()), 4,
                      command="./xhpl.tiny", ipm_config=IpmConfig(), seed=3)
        xml_path = str(tmp_path / "hpl.xml")
        write_xml(res.report, xml_path)

        # banner from the CLI equals banner from the in-memory report
        assert ipm_parse_main([xml_path, "--top", "50"]) == 0
        cli_banner = capsys.readouterr().out.strip()
        assert cli_banner == banner_parallel(read_xml(xml_path), top=50).strip()
        assert cli_banner == banner_parallel(res.report, top=50).strip()

        html = str(tmp_path / "hpl.html")
        cube = str(tmp_path / "hpl.cube")
        assert ipm_parse_main([xml_path, "--html", html, "--cube", cube]) == 0
        assert "dgemm_nn_e_kernel" in open(html).read()

        # metrics computed from the parsed report match the original
        parsed = read_xml(xml_path)
        assert metrics.gpu_utilization(parsed) == pytest.approx(
            metrics.gpu_utilization(res.report), rel=1e-6
        )
        # XML stores times at 9-decimal precision; tolerate that rounding
        assert metrics.comm_percent(parsed) == pytest.approx(
            metrics.comm_percent(res.report), rel=1e-6
        )

    def test_cli_rejects_missing_file(self):
        with pytest.raises(Exception):
            ipm_parse_main(["/nonexistent/profile.xml"])


class TestProjections:
    def test_paratec_projection_matches_direct_ablation_direction(self):
        """The model predicts savings from escaping the thunking
        wrappers; the prediction is positive and plausible."""
        from repro.apps.paratec import ParatecConfig, paratec_app

        res = run_job(
            lambda env: paratec_app(env, ParatecConfig.tiny()), 4,
            ipm_config=IpmConfig(),
        )
        projections = {p.name: p for p in model_projections(res.report)}
        direct = projections["direct-blas"]
        assert 0.0 < direct.savings_fraction < 1.0
        assert direct.projected_wallclock < direct.current_wallclock

    def test_amber_heterogeneous_projection(self):
        from repro.apps.amber import AmberConfig, amber_app
        from repro.cuda.costmodel import GpuTimingModel

        gt = GpuTimingModel()
        gt.context_init_sigma = 0.01
        res = run_job(lambda env: amber_app(env, AmberConfig(steps=20)), 4,
                      ipm_config=IpmConfig(), gpu_timing=gt)
        projections = {p.name: p for p in model_projections(res.report)}
        hetero = projections["heterogeneous-cpu"]
        # the recoverable time is ~ the 22.5% threadSync share
        assert hetero.savings_fraction == pytest.approx(0.225, abs=0.06)

    def test_clean_profile_has_no_projections(self):
        def app(env):
            env.hostcompute(1.0)

        res = run_job(app, 2, ipm_config=IpmConfig(monitor_cuda=False,
                                                   host_idle=False))
        assert model_projections(res.report) == []


class TestScaleSmoke:
    def test_256_rank_job(self):
        """The substrate holds up at the paper's largest configuration."""

        def app(env):
            env.mpi.MPI_Barrier()
            total = env.mpi.MPI_Allreduce(env.rank)
            env.hostcompute(0.001)
            env.mpi.MPI_Barrier()
            return total

        res = run_job(app, 256, ranks_per_node=8, n_nodes=32, seed=5)
        assert res.results == [255 * 256 // 2] * 256

    def test_many_sequential_jobs_do_not_interfere(self):
        walls = set()
        for seed in range(3):
            res = run_job(lambda env: hpl_app(env, HplConfig.tiny()), 2,
                          seed=0)
            walls.add(round(res.wallclock, 9))
        assert len(walls) == 1  # identical seed ⇒ identical result
