"""Tier-1 smoke test for the overhead benchmark harness.

Runs ``benchmarks/bench_overhead.py`` at a tiny event count (well under
a second) so the measurement harness itself cannot silently rot: the
harness must drive the real wrapper stack, produce sane numbers, and
write a JSON file with the documented schema.
"""

import importlib.util
import json
from pathlib import Path


def _load_bench_overhead():
    path = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "bench_overhead.py"
    )
    spec = importlib.util.spec_from_file_location("bench_overhead", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_overhead_bench_smoke(tmp_path):
    bench = _load_bench_overhead()
    result = bench.run_overhead_bench(events=2_000, warmup=200)
    assert result["schema"] == bench.SCHEMA
    assert result["events"] == 2_000
    assert result["monitored_events_per_sec"] > 0
    assert result["inactive_events_per_sec"] > 0
    # monitoring is never free, so the bypass must be faster
    assert (
        result["inactive_events_per_sec"] > result["monitored_events_per_sec"]
    )
    assert result["overhead_us_per_event"] > 0
    assert result["prechange_monitored_events_per_sec"] > 0
    # one plain + four byte-bucketed refined signatures
    assert result["distinct_signatures"] == 5
    # the telemetry-enabled pass must run and actually tick the sampler
    assert result["telemetry_events_per_sec"] > 0
    assert result["telemetry_ticks"] >= 1
    assert result["telemetry_overhead_us_per_event"] > 0

    out = tmp_path / "BENCH_overhead.json"
    bench.write_result(result, str(out))
    loaded = json.loads(out.read_text())
    assert loaded == result

    text = bench.format_result(result)
    assert "monitored" in text and "speedup" in text


def test_overhead_bench_default_output_is_repo_root():
    bench = _load_bench_overhead()
    path = Path(bench.default_output_path())
    assert path.name == "BENCH_overhead.json"
    assert path.parent == Path(__file__).resolve().parents[2]
