"""Vector-variant collectives (Gatherv / Allgatherv / Reduce_scatter)."""

import numpy as np
import pytest

from repro.mpi import ReduceOp, mpirun


class TestGatherv:
    def test_variable_sized_contributions(self):
        def body(comm):
            data = list(range(comm.rank + 1))  # rank r contributes r+1 items
            return comm.MPI_Gatherv(data, root=0)

        res = mpirun(body, 3).results
        assert res[0] == [[0], [0, 1], [0, 1, 2]]
        assert res[1] is None and res[2] is None

    def test_rendezvous_staggering_like_gather(self):
        def body(comm):
            comm.MPI_Barrier()
            t0 = comm.sim.now
            comm.MPI_Gatherv(None, root=0, nbytes=(comm.rank + 1) << 20)
            return comm.sim.now - t0

        res = mpirun(body, 4).results
        assert res[0] >= max(res[1:]) - 1e-12
        assert res[1] < res[3]


class TestAllgatherv:
    def test_everyone_gets_everything(self):
        def body(comm):
            return comm.MPI_Allgatherv(np.full(comm.rank + 1, comm.rank))

        res = mpirun(body, 3).results
        for r in res:
            assert [len(x) for x in r] == [1, 2, 3]

    def test_cost_scales_with_largest_contribution(self):
        def timed(nbytes):
            def body(comm):
                comm.MPI_Barrier()
                t0 = comm.sim.now
                comm.MPI_Allgatherv(None, nbytes=nbytes)
                return comm.sim.now - t0

            return max(mpirun(body, 4).results)

        assert timed(8 << 20) > timed(1 << 20)


class TestReduceScatter:
    def test_blockwise_reduce_and_scatter(self):
        def body(comm):
            # rank r contributes blocks [r*10+0, r*10+1, r*10+2]
            blocks = [comm.rank * 10 + j for j in range(3)]
            return comm.MPI_Reduce_scatter(blocks)

        res = mpirun(body, 3).results
        # block j = sum over ranks of (r*10 + j)
        assert res == [30 + 0 * 3, 30 + 1 * 3, 30 + 2 * 3]

    def test_array_blocks(self):
        def body(comm):
            blocks = [np.full(4, float(comm.rank)) for _ in range(2)]
            return comm.MPI_Reduce_scatter(blocks, op=ReduceOp.MAX)

        res = mpirun(body, 2).results
        np.testing.assert_array_equal(res[0], np.full(4, 1.0))
        np.testing.assert_array_equal(res[1], np.full(4, 1.0))

    def test_wrong_block_count_detected(self):
        from repro.simt import ProcessCrashed

        def body(comm):
            comm.MPI_Reduce_scatter([1, 2])  # needs 3 blocks for 3 ranks

        with pytest.raises(ProcessCrashed):
            mpirun(body, 3)

    def test_synthetic_payload(self):
        def body(comm):
            return comm.MPI_Reduce_scatter(None, nbytes=1 << 20)

        assert mpirun(body, 4).results == [None] * 4


class TestIpmSeesVectorCollectives:
    def test_wrapped_and_sized(self):
        from repro.cluster import run_job
        from repro.core import IpmConfig

        def app(env):
            env.mpi.MPI_Allgatherv(None, nbytes=4096)
            env.mpi.MPI_Gatherv(None, root=0, nbytes=8192)

        res = run_job(app, 2, ipm_config=IpmConfig(monitor_cuda=False,
                                                   host_idle=False))
        by = res.report.merged_by_name()
        assert by["MPI_Allgatherv"].count == 2
        assert by["MPI_Gatherv"].count == 2
        sigs = {(s.name, s.nbytes) for s, _ in res.report.tasks[0].table.items()}
        assert ("MPI_Allgatherv", 4096) in sigs
        assert ("MPI_Gatherv", 8192) in sigs
