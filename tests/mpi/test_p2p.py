"""Point-to-point MPI semantics."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, NetworkModel, mpirun
from repro.simt import SimulationError


class TestBasicSendRecv:
    def test_ping(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send({"a": 7}, dest=1, tag=11)
            elif comm.rank == 1:
                data, status = comm.MPI_Recv(source=0, tag=11)
                assert data == {"a": 7}
                assert status.source == 0 and status.tag == 11
                return data

        res = mpirun(body, 2)
        assert res.results[1] == {"a": 7}

    def test_numpy_payload(self):
        sent = np.arange(1000, dtype=np.float64)

        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send(sent, dest=1)
            else:
                data, status = comm.MPI_Recv(source=0)
                assert status.nbytes == sent.nbytes
                return data

        res = mpirun(body, 2)
        np.testing.assert_array_equal(res.results[1], sent)

    def test_wildcard_source_and_tag(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send("x", dest=2, tag=5)
            elif comm.rank == 1:
                comm.sim.sleep(0.001)
                comm.MPI_Send("y", dest=2, tag=9)
            else:
                a, sa = comm.MPI_Recv(source=ANY_SOURCE, tag=ANY_TAG)
                b, sb = comm.MPI_Recv(source=ANY_SOURCE, tag=ANY_TAG)
                return (a, sa.source, sa.tag), (b, sb.source, sb.tag)

        res = mpirun(body, 3)
        assert ("x", 0, 5) in res.results[2]
        assert ("y", 1, 9) in res.results[2]

    def test_tag_selectivity(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send("first", dest=1, tag=1)
                comm.MPI_Send("second", dest=1, tag=2)
            else:
                b, _ = comm.MPI_Recv(source=0, tag=2)
                a, _ = comm.MPI_Recv(source=0, tag=1)
                return a, b

        res = mpirun(body, 2)
        assert res.results[1] == ("first", "second")

    def test_message_order_preserved_same_tag(self):
        def body(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.MPI_Send(i, dest=1, tag=0)
            else:
                return [comm.MPI_Recv(source=0, tag=0)[0] for _ in range(10)]

        res = mpirun(body, 2)
        assert res.results[1] == list(range(10))

    def test_send_to_invalid_rank(self):
        def body(comm):
            if comm.rank == 0:
                with pytest.raises(MpiError):
                    comm.MPI_Send(1, dest=5)

        mpirun(body, 2)

    def test_unmatched_recv_deadlocks(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Recv(source=1)

        with pytest.raises(SimulationError, match="deadlock"):
            mpirun(body, 2)


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.MPI_Isend(np.ones(5), dest=1)
                comm.MPI_Wait(req)
            else:
                req = comm.MPI_Irecv(source=0)
                data = comm.MPI_Wait(req)
                return float(data.sum())

        assert mpirun(body, 2).results[1] == 5.0

    def test_waitall(self):
        def body(comm):
            if comm.rank == 0:
                reqs = [comm.MPI_Isend(i, dest=1, tag=i) for i in range(4)]
                comm.MPI_Waitall(reqs)
            else:
                reqs = [comm.MPI_Irecv(source=0, tag=i) for i in range(4)]
                return comm.MPI_Waitall(reqs)

        assert mpirun(body, 2).results[1] == [0, 1, 2, 3]

    def test_test_polls_without_blocking(self):
        def body(comm):
            if comm.rank == 0:
                comm.sim.sleep(1.0)
                comm.MPI_Send("late", dest=1)
            else:
                req = comm.MPI_Irecv(source=0)
                early = comm.MPI_Test(req)
                comm.sim.sleep(2.0)
                late = comm.MPI_Test(req)
                return early, late

        assert mpirun(body, 2).results[1] == (False, True)

    def test_sendrecv_exchange(self):
        def body(comm):
            other = 1 - comm.rank
            data, _ = comm.MPI_Sendrecv(comm.rank, dest=other, recvsource=other)
            return data

        assert mpirun(body, 2).results == [1, 0]


class TestProtocols:
    def test_eager_send_completes_without_receiver(self):
        """Small sends are buffered: sender proceeds immediately."""

        def body(comm):
            if comm.rank == 0:
                t0 = comm.sim.now
                comm.MPI_Send(b"x" * 100, dest=1)  # < eager threshold
                elapsed = comm.sim.now - t0
                comm.MPI_Send(elapsed, dest=1, tag=99)
            else:
                comm.sim.sleep(5.0)  # receiver is late
                comm.MPI_Recv(source=0, tag=0)
                return comm.MPI_Recv(source=0, tag=99)[0]

        assert mpirun(body, 2).results[1] < 1.0

    def test_rendezvous_send_blocks_for_receiver(self):
        """Large sends stall until the matching receive is posted."""
        nbytes = 10 * 1024 * 1024

        def body(comm):
            if comm.rank == 0:
                t0 = comm.sim.now
                comm.MPI_Send(None, dest=1, nbytes=nbytes)
                return comm.sim.now - t0
            comm.sim.sleep(3.0)
            comm.MPI_Recv(source=0)

        assert mpirun(body, 2).results[0] >= 3.0

    def test_intra_node_faster_than_inter_node(self):
        nbytes = 1 << 20

        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send(None, dest=1, nbytes=nbytes)
                comm.MPI_Send(None, dest=2, nbytes=nbytes)
            elif comm.rank == 1:
                t0 = comm.sim.now
                comm.MPI_Recv(source=0)
                return comm.sim.now - t0
            else:
                t0 = comm.sim.now
                comm.MPI_Recv(source=0)
                return comm.sim.now - t0

        # ranks 0,1 share node 0; rank 2 is alone on node 1.
        res = mpirun(body, 3, ranks_per_node=2)
        t_intra, t_inter = res.results[1], res.results[2]
        assert t_intra < t_inter

    def test_explicit_nbytes_prices_synthetic_payload(self):
        model = NetworkModel()

        def body(comm):
            if comm.rank == 0:
                comm.MPI_Send(None, dest=1, nbytes=320_000_000)
            else:
                t0 = comm.sim.now
                comm.MPI_Recv(source=0)
                return comm.sim.now - t0

        t = mpirun(body, 2).results[1]
        assert t == pytest.approx(320_000_000 / model.inter_bandwidth, rel=0.2)

    def test_wtime_and_rank_size(self):
        def body(comm):
            assert comm.MPI_Comm_size() == 3
            assert 0 <= comm.MPI_Comm_rank() < 3
            t = comm.MPI_Wtime()
            comm.sim.sleep(1.5)
            return comm.MPI_Wtime() - t

        assert all(abs(r - 1.5) < 1e-12 for r in mpirun(body, 3).results)

    def test_abort_raises(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Abort(3)

        from repro.simt import ProcessCrashed

        with pytest.raises(ProcessCrashed):
            mpirun(body, 2)
