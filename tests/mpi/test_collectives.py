"""Collective operation semantics and cost-model shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ReduceOp, mpirun
from repro.mpi.collectives import MpiCollectiveMismatch
from repro.simt import ProcessCrashed


class TestSemantics:
    def test_bcast(self):
        def body(comm):
            data = {"k": [1, 2]} if comm.rank == 0 else None
            return comm.MPI_Bcast(data, root=0)

        res = mpirun(body, 4)
        assert all(r == {"k": [1, 2]} for r in res.results)

    def test_bcast_nonzero_root(self):
        def body(comm):
            data = "payload" if comm.rank == 2 else None
            return comm.MPI_Bcast(data, root=2)

        assert all(r == "payload" for r in mpirun(body, 4).results)

    def test_allreduce_sum_scalar(self):
        def body(comm):
            return comm.MPI_Allreduce(comm.rank + 1, op=ReduceOp.SUM)

        assert mpirun(body, 5).results == [15] * 5

    def test_allreduce_array(self):
        def body(comm):
            return comm.MPI_Allreduce(np.full(3, comm.rank, dtype=np.float64))

        for r in mpirun(body, 4).results:
            np.testing.assert_array_equal(r, [6.0, 6.0, 6.0])

    def test_reduce_max_only_at_root(self):
        def body(comm):
            return comm.MPI_Reduce(comm.rank * 10, op=ReduceOp.MAX, root=1)

        res = mpirun(body, 4).results
        assert res[1] == 30
        assert res[0] is None and res[2] is None and res[3] is None

    def test_reduce_min_and_prod(self):
        def body(comm):
            mn = comm.MPI_Allreduce(comm.rank + 1, op=ReduceOp.MIN)
            pr = comm.MPI_Allreduce(comm.rank + 1, op=ReduceOp.PROD)
            return mn, pr

        assert mpirun(body, 4).results == [(1, 24)] * 4

    def test_gather(self):
        def body(comm):
            return comm.MPI_Gather(comm.rank**2, root=0)

        res = mpirun(body, 4).results
        assert res[0] == [0, 1, 4, 9]
        assert res[1:] == [None, None, None]

    def test_allgather(self):
        def body(comm):
            return comm.MPI_Allgather(chr(ord("a") + comm.rank))

        assert mpirun(body, 3).results == [["a", "b", "c"]] * 3

    def test_scatter(self):
        def body(comm):
            items = [i * 100 for i in range(4)] if comm.rank == 0 else None
            return comm.MPI_Scatter(items, root=0)

        assert mpirun(body, 4).results == [0, 100, 200, 300]

    def test_alltoall(self):
        def body(comm):
            return comm.MPI_Alltoall([f"{comm.rank}->{j}" for j in range(3)])

        res = mpirun(body, 3).results
        assert res[1] == ["0->1", "1->1", "2->1"]

    def test_barrier_synchronizes(self):
        def body(comm):
            comm.sim.sleep(float(comm.rank))
            comm.MPI_Barrier()
            return comm.sim.now

        res = mpirun(body, 4).results
        assert max(res) - min(res) < 1e-9
        assert min(res) >= 3.0

    def test_mismatched_collectives_detected(self):
        def body(comm):
            if comm.rank == 0:
                comm.MPI_Barrier()
            else:
                comm.MPI_Bcast(1, root=1)

        with pytest.raises(ProcessCrashed) as ei:
            mpirun(body, 2)
        assert isinstance(ei.value.__cause__, MpiCollectiveMismatch)

    def test_scatter_wrong_length_detected(self):
        def body(comm):
            items = [1, 2] if comm.rank == 0 else None
            comm.MPI_Scatter(items, root=0)

        with pytest.raises(ProcessCrashed):
            mpirun(body, 3)

    def test_collectives_in_sequence(self):
        def body(comm):
            a = comm.MPI_Allreduce(1)
            comm.MPI_Barrier()
            b = comm.MPI_Bcast(a * 2 if comm.rank == 0 else None, root=0)
            return b

        assert mpirun(body, 3).results == [6, 6, 6]


class TestCostShapes:
    def _time_collective(self, size, ranks_per_node, call):
        def body(comm):
            comm.MPI_Barrier()
            t0 = comm.sim.now
            call(comm)
            return comm.sim.now - t0

        return max(mpirun(body, size, ranks_per_node=ranks_per_node).results)

    def test_allreduce_cost_grows_with_size(self):
        small = self._time_collective(
            8, 4, lambda c: c.MPI_Allreduce(None, nbytes=1024)
        )
        large = self._time_collective(
            8, 4, lambda c: c.MPI_Allreduce(None, nbytes=1024 * 1024)
        )
        assert large > small

    def test_gather_root_pays_linear_cost(self):
        """Root-side Gather cost ~ p * message cost — the Fig. 10 blow-up."""
        nbytes = 256 * 1024

        def timed_gather(size):
            def body(comm):
                comm.MPI_Barrier()
                t0 = comm.sim.now
                comm.MPI_Gather(None, root=0, nbytes=nbytes)
                return comm.sim.now - t0

            return mpirun(body, size, ranks_per_node=8).results[0]

        t32, t128, t256 = timed_gather(32), timed_gather(128), timed_gather(256)
        assert t128 > 3.0 * t32
        assert t256 > 1.8 * t128

    def test_rendezvous_gather_staggers_nonroots(self):
        """Large gathers: the root drains serially, so early non-roots
        leave far sooner than late ones; the root leaves last."""

        def body(comm):
            comm.MPI_Barrier()
            t0 = comm.sim.now
            comm.MPI_Gather(None, root=0, nbytes=1 << 20)
            return comm.sim.now - t0

        res = mpirun(body, 8, ranks_per_node=4).results
        assert res[0] >= max(res[1:]) - 1e-12   # root last (ties with rank 7)
        assert res[1] < res[7] / 3              # early ranks leave early

    def test_eager_gather_nonroots_leave_immediately(self):
        def body(comm):
            comm.MPI_Barrier()
            t0 = comm.sim.now
            comm.MPI_Gather(comm.rank, root=0)  # tiny payload: eager
            return comm.sim.now - t0

        res = mpirun(body, 8).results
        assert res[0] > max(res[1:])

    def test_numa_penalty_when_oversubscribed(self):
        """8 ranks/node costs more per byte than 2 ranks/node."""
        nbytes = 1 << 20

        def run(rpn):
            def body(comm):
                comm.MPI_Barrier()
                t0 = comm.sim.now
                comm.MPI_Allreduce(None, nbytes=nbytes)
                return comm.sim.now - t0

            return max(mpirun(body, 16, ranks_per_node=rpn).results)

        assert run(8) > run(2)

    def test_barrier_cost_is_logarithmic(self):
        def run(size):
            def body(comm):
                t0 = comm.sim.now
                comm.MPI_Barrier()
                return comm.sim.now - t0

            return max(mpirun(body, size).results)

        t4, t64 = run(4), run(64)
        assert t64 < 10 * t4  # log growth, far from linear


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=9),
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=9, max_size=9),
)
def test_allreduce_matches_numpy(size, values):
    """Property: simulated Allreduce equals the direct reduction."""

    def body(comm):
        return comm.MPI_Allreduce(values[comm.rank], op=ReduceOp.SUM)

    res = mpirun(body, size).results
    assert res == [sum(values[:size])] * size


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=2, max_value=8), seed=st.integers(0, 1000))
def test_ring_exchange_conserves_data(size, seed):
    """Property: a ring shift permutes payloads without loss."""
    rng = np.random.default_rng(seed)
    payloads = [int(x) for x in rng.integers(0, 1 << 30, size)]

    def body(comm):
        right = (comm.rank + 1) % size
        data, _ = comm.MPI_Sendrecv(payloads[comm.rank], dest=right)
        return data

    res = mpirun(body, size).results
    assert sorted(res) == sorted(payloads)
    assert res == [payloads[(r - 1) % size] for r in range(size)]
