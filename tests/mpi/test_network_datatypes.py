"""Network model, payload sizing and request-object tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import NetworkModel, Network, ReduceOp, payload_nbytes
from repro.mpi.request import Request, Status
from repro.simt import Simulator


class TestPayloadSizing:
    def test_explicit_nbytes_wins(self):
        assert payload_nbytes(np.zeros(10), nbytes=5) == 5

    def test_negative_explicit_rejected(self):
        with pytest.raises(ValueError):
            payload_nbytes(None, nbytes=-1)

    def test_ndarray(self):
        assert payload_nbytes(np.zeros(100, dtype=np.float64)) == 800

    def test_bytes_and_none(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(None) == 0

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8
        assert payload_nbytes(1 + 2j) == 8

    def test_strings_and_containers(self):
        assert payload_nbytes("héllo") == len("héllo".encode("utf-8"))
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes((np.zeros(2), 1)) == 24

    def test_opaque_object_estimate(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64


class TestReduceOps:
    def test_all_ops_scalar(self):
        vals = [3, 1, 2]
        assert ReduceOp.SUM.reduce_all(vals) == 6
        assert ReduceOp.PROD.reduce_all(vals) == 6
        assert ReduceOp.MAX.reduce_all(vals) == 3
        assert ReduceOp.MIN.reduce_all(vals) == 1

    def test_array_ops(self):
        a = np.array([1.0, 5.0])
        b = np.array([2.0, 3.0])
        np.testing.assert_array_equal(ReduceOp.MAX.combine(a, b), [2.0, 5.0])
        np.testing.assert_array_equal(ReduceOp.MIN.combine(a, b), [1.0, 3.0])
        np.testing.assert_array_equal(ReduceOp.PROD.combine(a, b), [2.0, 15.0])

    def test_none_handling(self):
        assert ReduceOp.SUM.reduce_all([None, None]) is None
        assert ReduceOp.SUM.reduce_all([None, 5, None, 2]) == 7


class TestNetworkModel:
    def test_base_cost_intra_vs_inter(self):
        m = NetworkModel()
        n = 1 << 20
        assert m.base_cost(n, same_node=True) < m.base_cost(n, same_node=False)

    def test_numa_factor_free_below_threshold(self):
        m = NetworkModel()
        assert m.numa_factor(1) == 1.0
        assert m.numa_factor(4) == 1.0
        assert m.numa_factor(8) == pytest.approx(1.0 + 0.35 * 4)

    def test_transfer_reserves_both_nics(self):
        sim = Simulator()
        net = Network(sim, NetworkModel(inter_latency=0.0, inter_bandwidth=100.0))
        # two simultaneous sends from node 0 to nodes 1 and 2 contend
        # on node 0's TX NIC
        a = net.transfer(100, 0, 1)  # 1 s
        b = net.transfer(100, 0, 2)  # queued behind a on tx0
        sim.run()
        assert a.fire_time == pytest.approx(1.0)
        assert b.fire_time == pytest.approx(2.0)

    def test_disjoint_pairs_run_parallel(self):
        sim = Simulator()
        net = Network(sim, NetworkModel(inter_latency=0.0, inter_bandwidth=100.0))
        a = net.transfer(100, 0, 1)
        b = net.transfer(100, 2, 3)
        sim.run()
        assert a.fire_time == pytest.approx(1.0)
        assert b.fire_time == pytest.approx(1.0)

    def test_stats(self):
        sim = Simulator()
        net = Network(sim)
        net.transfer(1000, 0, 1)
        net.transfer(500, 1, 0)
        sim.run()
        assert net.bytes_moved == 1500
        assert net.messages == 2


class TestRequests:
    def test_request_lifecycle(self):
        sim = Simulator()
        req = Request(sim, "recv")
        assert not req.done and not req.test()
        req.completion.fire("data")

        def body():
            return req.wait()

        proc = sim.spawn(body)
        sim.run()
        assert proc.result == "data"
        assert req.test()

    def test_status_defaults(self):
        s = Status()
        assert s.source == -1 and s.tag == -1 and s.nbytes == 0


@settings(max_examples=40, deadline=None)
@given(
    nbytes=st.integers(min_value=0, max_value=1 << 30),
    same=st.booleans(),
    rpn=st.integers(min_value=1, max_value=8),
)
def test_cost_monotonicity(nbytes, same, rpn):
    """Property: transfer cost is monotone in size and oversubscription."""
    m = NetworkModel()
    base = m.base_cost(nbytes, same)
    bigger = m.base_cost(nbytes + 4096, same)
    assert bigger > base
    assert m.numa_factor(rpn + 1) >= m.numa_factor(rpn)
    assert base >= (m.intra_latency if same else m.inter_latency)
