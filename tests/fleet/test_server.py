"""The HTTP query API: routes, content types, error handling."""

import json
import urllib.error
import urllib.request

import pytest

from repro.fleet.server import OPENMETRICS_CONTENT_TYPE, FleetHttpServer
from repro.fleet.store import FleetStore


@pytest.fixture
def served():
    store = FleetStore()
    store.ingest({"kind": "job_start", "job": "j1", "meta": {"app": "hpl"}})
    store.ingest({
        "kind": "sample", "job": "j1", "t": 0.02,
        "points": [{"name": "gpu_busy_fraction",
                    "labels": {"node": "dirac01"}, "value": 0.5}],
    })
    server = FleetHttpServer(store).start()
    yield store, server.url
    server.stop()


def get(url):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def get_json(url):
    status, ctype, body = get(url)
    assert ctype.startswith("application/json")
    return status, json.loads(body)


class TestRoutes:
    def test_metrics_is_openmetrics_text(self, served):
        _, url = served
        status, ctype, body = get(url + "/metrics")
        assert status == 200
        assert ctype == OPENMETRICS_CONTENT_TYPE
        assert body.decode().endswith("# EOF\n")

    def test_healthz(self, served):
        _, url = served
        status, payload = get_json(url + "/healthz")
        assert status == 200
        assert payload["ok"] is True
        assert payload["status"] == "healthy"
        assert payload["reasons"] == []
        assert payload["frozen"] is False

    def test_degraded_healthz_is_503(self, served):
        # status-code probes (k8s, curl -f) must see the degradation
        store, url = served
        store.freeze()
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/healthz")
        assert err.value.code == 503
        payload = json.loads(err.value.read())
        assert payload["ok"] is False
        assert payload["status"] == "degraded"

    def test_publishers_route(self, served):
        _, url = served
        status, payload = get_json(url + "/publishers")
        assert status == 200
        assert payload["totals"]["publishers"] == 0
        assert payload["publishers"] == []

    def test_root_and_fleet_serve_the_summary(self, served):
        _, url = served
        for path in ("/", "/fleet"):
            status, payload = get_json(url + path)
            assert status == 200
            assert payload["ingest"]["samples"] == 1

    def test_jobs_listing_and_detail(self, served):
        _, url = served
        status, payload = get_json(url + "/jobs")
        assert status == 200
        assert [j["job"] for j in payload["jobs"]] == ["j1"]
        for path in ("/jobs/j1", "/jobs/j1/rollups"):
            status, detail = get_json(url + path)
            assert status == 200
            assert "gpu_busy_fraction" in detail["metrics"]

    def test_rollups_resolution_query_parameter(self, served):
        store, url = served
        store.ingest({
            "kind": "sample", "job": "j1", "t": 0.08,
            "points": [{"name": "gpu_busy_fraction", "labels": {},
                        "value": 1.0}],
        })
        _, fine = get_json(url + "/jobs/j1/rollups")
        _, coarse = get_json(url + "/jobs/j1/rollups?resolution=0.5")
        assert len(coarse["metrics"]["gpu_busy_fraction"]["series"]) < \
               len(fine["metrics"]["gpu_busy_fraction"]["series"])

    def test_nodes_listing_and_detail(self, served):
        _, url = served
        status, payload = get_json(url + "/nodes")
        assert [n["node"] for n in payload["nodes"]] == ["dirac01"]
        status, detail = get_json(url + "/nodes/dirac01")
        assert status == 200
        assert detail["jobs"] == ["j1"]


class TestErrors:
    def expect(self, url, code):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url)
        assert err.value.code == code
        return json.loads(err.value.read())

    def test_unknown_job_and_node_are_json_404(self, served):
        _, url = served
        assert "unknown job" in self.expect(url + "/jobs/nope", 404)["error"]
        assert "unknown node" in \
            self.expect(url + "/nodes/nope", 404)["error"]

    def test_unknown_path_is_json_404(self, served):
        _, url = served
        self.expect(url + "/definitely/not/a/route", 404)

    def test_bad_resolution_is_400(self, served):
        _, url = served
        for bad in ("abc", "-1", "0"):
            payload = self.expect(
                url + f"/jobs/j1/rollups?resolution={bad}", 400
            )
            assert "resolution" in payload["error"]
