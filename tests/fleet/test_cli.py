"""`python -m repro`: report --json, fleet serve/query, sweep --fleet."""

import json
import threading
import time

from repro import IpmConfig, JobSpec, run_job
from repro.__main__ import EXIT_BAD_INPUT, EXIT_OK, main
from repro.core import write_xml


def wait_until(cond, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def telemetry_spec(seed):
    return {
        "app": "square", "ntasks": 2, "seed": seed,
        "ipm": {
            "__config__": "IpmConfig",
            "telemetry": {
                "__config__": "TelemetryConfig",
                "enabled": True,
                "sinks": ["memory"],
            },
        },
    }


class TestReportJson:
    def test_json_flag_emits_machine_readable_summary(self, tmp_path, capsys):
        res = run_job(JobSpec(app="square", ntasks=2, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        assert main(["report", str(xml), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ntasks"] == 2
        assert payload["complete"] is True
        assert payload["wallclock"] > 0
        assert payload["regions"]
        assert {"name", "count", "total", "avg"} <= set(
            payload["regions"][0]
        )

    def test_top_limits_the_region_list(self, tmp_path, capsys):
        res = run_job(JobSpec(app="square", ntasks=1, ipm=IpmConfig()))
        xml = tmp_path / "profile.xml"
        write_xml(res.report, str(xml))
        assert main(["report", str(xml), "--json", "--top", "1"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["regions"]) == 1


class TestFleetServe:
    def test_short_serve_announces_and_exits_cleanly(self, tmp_path, capsys):
        announce = tmp_path / "endpoints.json"
        code = main([
            "fleet", "serve", "--ingest", "127.0.0.1:0",
            "--http", "127.0.0.1:0", "--announce", str(announce),
            "--duration", "0.2",
        ])
        assert code == EXIT_OK
        endpoints = json.loads(announce.read_text())
        assert set(endpoints) == {"ingest", "http", "url"}
        assert not endpoints["ingest"].endswith(":0")  # port resolved
        out = capsys.readouterr().out
        assert "ingest on" in out and "stopped after" in out

    def test_bad_bind_address_is_exit_2(self, capsys):
        assert main([
            "fleet", "serve", "--ingest", "not-an-address",
            "--duration", "0.1",
        ]) == EXIT_BAD_INPUT
        assert "bad input" in capsys.readouterr().err


class TestFleetQuery:
    def test_unreachable_server_is_exit_2(self, capsys):
        assert main([
            "fleet", "query", "127.0.0.1:1", "/jobs",
        ]) == EXIT_BAD_INPUT
        assert "cannot reach" in capsys.readouterr().err


class TestSweepFleetRoundTrip:
    """The CI smoke, in-process: serve + sweep --fleet + query."""

    def test_sweep_streams_and_queries_serve_rollups(self, tmp_path, capsys):
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps(
            [telemetry_spec(s) for s in (1, 2)]
        ), encoding="utf-8")
        announce = tmp_path / "endpoints.json"
        serve_exit = []
        server = threading.Thread(
            target=lambda: serve_exit.append(main([
                "fleet", "serve", "--ingest", "127.0.0.1:0",
                "--http", "127.0.0.1:0", "--announce", str(announce),
                "--duration", "6",
            ])),
            daemon=True,
        )
        server.start()
        try:
            assert wait_until(announce.exists)
            endpoints = json.loads(announce.read_text())
            capsys.readouterr()  # drain the serve banner

            assert main([
                "sweep", str(specs), "--mode", "serial",
                "--fleet", endpoints["ingest"],
            ]) == EXIT_OK
            capsys.readouterr()

            assert main([
                "fleet", "query", endpoints["http"], "/jobs",
            ]) == EXIT_OK
            jobs = json.loads(capsys.readouterr().out)
            assert jobs["counts"]["finished"] == 2
            assert all(row["status"] == "ok" for row in jobs["jobs"])

            job = jobs["jobs"][0]["job"]
            assert main([
                "fleet", "query", endpoints["http"],
                f"/jobs/{job}/rollups", "--resolution", "0.5",
            ]) == EXIT_OK
            rollups = json.loads(capsys.readouterr().out)
            assert rollups["resolution"] == 0.5
            assert "gpu_busy_fraction" in rollups["metrics"]

            assert main([
                "fleet", "query", endpoints["url"], "/metrics",
            ]) == EXIT_OK
            metrics = capsys.readouterr().out
            assert "# EOF" in metrics
            assert 'fleet_jobs{state="finished"} 2' in metrics
        finally:
            server.join(30.0)
        assert serve_exit == [EXIT_OK]  # clean shutdown at --duration


class TestDurableServeCli:
    def test_serve_with_data_dir_restarts_into_previous_state(
        self, tmp_path, capsys
    ):
        data = tmp_path / "fleet-data"
        specs = tmp_path / "specs.json"
        specs.write_text(
            json.dumps([telemetry_spec(7)]), encoding="utf-8"
        )
        announce = tmp_path / "endpoints.json"

        def serve():
            return main([
                "fleet", "serve", "--ingest", "127.0.0.1:0",
                "--http", "127.0.0.1:0", "--announce", str(announce),
                "--data-dir", str(data), "--duration", "6",
                "--compact-interval", "0",
            ])

        exits = []
        first = threading.Thread(
            target=lambda: exits.append(serve()), daemon=True
        )
        first.start()
        try:
            assert wait_until(announce.exists)
            endpoints = json.loads(announce.read_text())
            capsys.readouterr()
            assert main([
                "sweep", str(specs), "--mode", "serial",
                "--fleet", endpoints["ingest"],
            ]) == EXIT_OK
            capsys.readouterr()
            assert main([
                "fleet", "query", endpoints["http"], "/jobs",
            ]) == EXIT_OK
            before = json.loads(capsys.readouterr().out)
            assert before["counts"]["finished"] == 1
        finally:
            first.join(30.0)
        assert exits == [EXIT_OK]

        announce.unlink()
        second = threading.Thread(
            target=lambda: exits.append(main([
                "fleet", "serve", "--ingest", "127.0.0.1:0",
                "--http", "127.0.0.1:0", "--announce", str(announce),
                "--data-dir", str(data), "--duration", "1",
                "--compact-interval", "0",
            ])),
            daemon=True,
        )
        second.start()
        try:
            assert wait_until(announce.exists)
            endpoints = json.loads(announce.read_text())
            capsys.readouterr()
            assert main([
                "fleet", "query", endpoints["http"], "/jobs",
            ]) == EXIT_OK
            after = json.loads(capsys.readouterr().out)
            assert main([
                "fleet", "query", endpoints["http"], "/history",
            ]) == EXIT_OK
            history = json.loads(capsys.readouterr().out)
        finally:
            second.join(30.0)
        assert exits == [EXIT_OK, EXIT_OK]
        assert after["counts"]["finished"] == 1
        assert (
            [r["job"] for r in after["jobs"]]
            == [r["job"] for r in before["jobs"]]
        )
        assert history["enabled"] and history["replayed"] > 0

    def test_bad_retain_is_exit_2(self, capsys):
        assert main([
            "fleet", "serve", "--retain", "-1", "--duration", "0.1",
        ]) == EXIT_BAD_INPUT
        assert "bad input" in capsys.readouterr().err


class TestFleetCompactCli:
    def test_compact_rewrites_closed_segments(self, tmp_path, capsys):
        from repro.fleet.history import HistoryLog

        data = tmp_path / "fleet-data"
        log = HistoryLog(str(data), segment_bytes=256)
        for i in range(40):
            log.append({
                "kind": "sample", "job": "j", "t": float(i),
                "points": [{"name": "gpu_busy", "value": 0.5}],
            })
        log.close()
        assert main([
            "fleet", "compact", str(data), "--retain", "0",
        ]) == EXIT_OK
        out = capsys.readouterr().out
        assert "segments rewritten" in out and "saved" in out

    def test_missing_directory_is_exit_2(self, tmp_path, capsys):
        assert main([
            "fleet", "compact", str(tmp_path / "nope"),
        ]) == EXIT_BAD_INPUT
        assert "not a directory" in capsys.readouterr().err
