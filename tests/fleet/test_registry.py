"""Job/node liveness: transitions and publish-interval staleness."""

import pytest

from repro.fleet.registry import FleetRegistry


class FakeClock:
    def __init__(self, t: float = 100.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def reg(clock):
    return FleetRegistry(stale_after=10.0, clock=clock)


class TestJobLifecycle:
    def test_started_then_finished(self, reg):
        reg.job_started("j1", meta={"app": "hpl"}, source="job")
        record = reg.job("j1")
        assert record.state == "running"
        reg.job_finished("j1", status="ok", wallclock=2.5, attempts=1,
                         from_cache=False)
        assert record.state == "finished"
        assert record.status == "ok"
        assert record.wallclock == 2.5

    def test_restart_reopens_and_merges_meta(self, reg):
        reg.job_started("j1", meta={"a": 1})
        reg.job_finished("j1", status="crashed")
        reg.job_started("j1", meta={"b": 2})
        record = reg.job("j1")
        assert record.state == "running"
        assert record.meta == {"a": 1, "b": 2}

    def test_rank_status_accumulates(self, reg):
        reg.rank_status("j1", 0, "aborted")
        reg.rank_status("j1", 1, "stalled")
        assert reg.job("j1").ranks == {"0": "aborted", "1": "stalled"}

    def test_summary_is_json_ready(self, reg):
        import json

        reg.job_started("j1", meta={"app": "hpl"})
        json.dumps(reg.job("j1").summary(stale=False))


class TestStaleness:
    def test_running_job_goes_stale_past_horizon(self, reg, clock):
        reg.job_started("j1")
        record = reg.job("j1")
        assert not reg.job_is_stale(record)
        clock.t += 10.1
        assert reg.job_is_stale(record)
        assert [r.job for r in reg.stale_jobs()] == ["j1"]

    def test_finished_job_is_never_stale(self, reg, clock):
        reg.job_started("j1")
        reg.job_finished("j1", status="ok")
        clock.t += 100.0
        assert not reg.job_is_stale(reg.job("j1"))

    def test_publish_refreshes_the_horizon(self, reg, clock):
        reg.job_started("j1")
        clock.t += 8.0
        reg.job_seen("j1")
        clock.t += 8.0
        assert not reg.job_is_stale(reg.job("j1"))  # only 8s since last

    def test_node_staleness(self, reg, clock):
        reg.node_seen("dirac01", "j1")
        clock.t += 10.1
        assert reg.node_is_stale(reg.node("dirac01"))
        assert [r.node for r in reg.stale_nodes()] == ["dirac01"]

    def test_counts_histogram(self, reg, clock):
        reg.job_started("live")
        reg.job_started("done")
        reg.job_finished("done", status="ok")
        reg.job_started("quiet")
        clock.t += 10.1
        reg.job_seen("live")  # refresh
        reg.node_seen("dirac01")
        counts = reg.counts()
        assert counts == {
            "running": 1, "finished": 1, "stale": 1,
            "nodes": 1, "nodes_stale": 0,
        }

    def test_stale_after_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            FleetRegistry(stale_after=0, clock=clock)
