"""Durable history: segmented log, restart replay, retention compaction."""

import json
import os

import pytest

from repro.fleet.history import HistoryLog, Segment
from repro.fleet.service import FleetAggregator
from repro.fleet.store import FleetStore


def _stream(store, jobs=3, ticks=4, node=True):
    """Ingest a small deterministic multi-job stream; returns job ids."""
    ids = []
    for i in range(jobs):
        job = f"job-{i:03d}"
        ids.append(job)
        store.ingest({"kind": "job_start", "job": job,
                      "meta": {"app": "square", "ntasks": 2}})
        for tick in range(ticks):
            points = [{"name": "gpu_busy", "value": 0.25 + i + tick,
                       "labels": {}}]
            if node:
                points.append({"name": "node_busy", "value": float(tick),
                               "labels": {"node": f"n{i % 2}"}})
            store.ingest({"kind": "sample", "job": job, "t": tick * 0.05,
                          "points": points})
        store.ingest({"kind": "rank_status", "job": job, "rank": 1,
                      "status": "crashed" if i == 1 else "completed"})
        store.ingest({"kind": "job_end", "job": job,
                      "status": "ok", "wallclock": 1.0 + i})
    return ids


def _strip_clocks(summary):
    """Job summaries minus the host-clock fields that re-base on restart."""
    rows = []
    for row in summary["jobs"]:
        row = dict(row)
        row.pop("first_seen")
        row.pop("last_seen")
        rows.append(row)
    return {"counts": summary["counts"], "jobs": rows}


class TestHistoryLog:
    def test_append_replay_roundtrip(self, tmp_path):
        log = HistoryLog(tmp_path)
        records = [
            {"kind": "job_start", "job": "a"},
            {"kind": "sample", "job": "a", "t": 0.0,
             "points": [{"name": "m", "value": 1.0, "labels": {}}]},
            {"kind": "job_end", "job": "a", "status": "ok"},
        ]
        for record in records:
            log.append(record)
        log.close()
        replayed = list(HistoryLog(tmp_path).replay())
        assert replayed == records

    def test_segments_rotate_at_the_size_cap(self, tmp_path):
        log = HistoryLog(tmp_path, segment_bytes=256)
        for i in range(32):
            log.append({"kind": "job_start", "job": f"job-{i:04d}"})
        log.close()
        segments = log.segments()
        assert len(segments) > 1
        assert [s.seq for s in segments] == list(
            range(1, len(segments) + 1)
        )
        assert all(not s.compacted for s in segments)
        # replay preserves every record across the segment boundaries
        assert sum(1 for _ in log.replay()) == 32

    def test_restart_continues_the_active_segment(self, tmp_path):
        log = HistoryLog(tmp_path)
        log.append({"kind": "job_start", "job": "a"})
        log.close()
        again = HistoryLog(tmp_path)
        again.append({"kind": "job_start", "job": "b"})
        again.close()
        assert len(again.segments()) == 1
        assert [r["job"] for r in again.replay()] == ["a", "b"]

    def test_kill_mid_append_counts_one_torn_line(self, tmp_path):
        """A kill -9 mid-append leaves a truncated final line: replay
        recovers every complete record and counts exactly one torn
        line; the next append starts on a fresh line."""
        log = HistoryLog(tmp_path)
        for i in range(5):
            log.append({"kind": "job_start", "job": f"job-{i}"})
        log.close()
        (segment,) = log.segments()
        with open(segment.path, "ab") as fh:
            fh.write(b'{"kind": "sample", "job": "job-0", "poi')  # torn
        survivor = HistoryLog(tmp_path)
        replayed = list(survivor.replay())
        assert len(replayed) == 5
        assert survivor.torn_lines == 1
        survivor.append({"kind": "job_end", "job": "job-0", "status": "ok"})
        survivor.close()
        replayed = list(survivor.replay())
        assert len(replayed) == 6  # repair kept the new record intact
        assert replayed[-1]["kind"] == "job_end"

    def test_final_line_without_newline_is_recovered(self, tmp_path):
        log = HistoryLog(tmp_path)
        log.append({"kind": "job_start", "job": "a"})
        log.close()
        (segment,) = log.segments()
        with open(segment.path, "rb+") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.truncate()  # strip only the newline: record is complete
        survivor = HistoryLog(tmp_path)
        assert [r["job"] for r in survivor.replay()] == ["a"]
        assert survivor.torn_lines == 0

    def test_bad_parameters_raise(self, tmp_path):
        with pytest.raises(ValueError):
            HistoryLog(tmp_path, fsync="sometimes")
        with pytest.raises(ValueError):
            HistoryLog(tmp_path, segment_bytes=0)
        log = HistoryLog(tmp_path)
        with pytest.raises(ValueError):
            log.compact(retain=-1)
        with pytest.raises(ValueError):
            log.compact(resolution=0)

    def test_compaction_rewrites_closed_segments(self, tmp_path):
        log = HistoryLog(tmp_path, segment_bytes=512)
        store = FleetStore(clock=lambda: 100.0)
        store.history = log  # tee without replay
        _stream(store, jobs=6, ticks=8)
        log.rotate()
        stats = log.compact(retain=0, resolution=0.5)
        assert stats["segments_compacted"] >= 1
        assert stats["records_out"] < stats["records_in"]
        assert stats["bytes_after"] < stats["bytes_before"]
        assert all(s.compacted for s in log.segments())
        # lifecycle records survive verbatim: every job still opens,
        # carries its rank status, and closes.
        kinds = {}
        for record in log.replay():
            kinds.setdefault(record["kind"], 0)
            kinds[record["kind"]] += 1
        assert kinds["job_start"] == 6
        assert kinds["job_end"] == 6
        assert kinds["rank_status"] == 6
        assert kinds["sample_agg"] >= 6
        assert "sample" not in kinds

    def test_crash_between_replace_and_remove_prefers_raw(self, tmp_path):
        log = HistoryLog(tmp_path)
        log.append({"kind": "job_start", "job": "raw-truth"})
        log.close()
        (segment,) = log.segments()
        # simulate the crash window: a stale compacted twin exists
        compact_twin = segment.path.replace(".ndjson", ".compact.ndjson")
        with open(compact_twin, "wb") as fh:
            fh.write(b'{"kind": "job_start", "job": "stale-summary"}\n')
        survivor = HistoryLog(tmp_path)
        assert [r["job"] for r in survivor.replay()] == ["raw-truth"]

    def test_append_failure_degrades_with_a_warning(
        self, tmp_path, monkeypatch
    ):
        log = HistoryLog(tmp_path, fsync="always")
        log.append({"kind": "job_start", "job": "a"})

        def explode(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", explode)
        with pytest.warns(RuntimeWarning, match="history disabled"):
            log.append({"kind": "job_start", "job": "b"})
        assert log.disabled
        log.append({"kind": "job_start", "job": "c"})  # silent no-op
        assert log.appended == 1


class TestStoreReplay:
    def test_restart_reconstructs_registry_rollups_and_counters(
        self, tmp_path
    ):
        store = FleetStore(clock=lambda: 50.0)
        log = HistoryLog(tmp_path)
        assert store.attach_history(log) == 0
        _stream(store, jobs=4, ticks=5)
        pre_jobs = _strip_clocks(store.jobs_summary())
        pre_roll = store.job_rollups("job-002")
        pre = (store.records, store.samples, store.points)
        log.close()

        fresh = FleetStore(clock=lambda: 90.0)
        replayed = fresh.attach_history(HistoryLog(tmp_path))
        assert replayed == store.records
        assert fresh.history_replayed == replayed
        assert _strip_clocks(fresh.jobs_summary()) == pre_jobs
        post_roll = fresh.job_rollups("job-002")
        assert post_roll["metrics"] == pre_roll["metrics"]
        assert (fresh.records, fresh.samples, fresh.points) == pre

    def test_replay_does_not_feed_lag_or_reappend(self, tmp_path):
        store = FleetStore()
        log = HistoryLog(tmp_path)
        store.attach_history(log)
        store.ingest({"kind": "job_start", "job": "a", "hts": 1.0})
        appended = log.appended
        log.close()

        fresh_log = HistoryLog(tmp_path)
        fresh = FleetStore()
        fresh.attach_history(fresh_log)
        assert fresh.lag.count == 0  # stale hts stamps are not lag
        assert fresh_log.appended == 0  # replay never re-tees
        assert sum(1 for _ in HistoryLog(tmp_path).replay()) == appended

    def test_attach_twice_raises(self, tmp_path):
        store = FleetStore()
        store.attach_history(HistoryLog(tmp_path / "a"))
        with pytest.raises(RuntimeError):
            store.attach_history(HistoryLog(tmp_path / "b"))

    def test_lifetime_stats_survive_compaction_exactly(self, tmp_path):
        store = FleetStore(clock=lambda: 10.0)
        log = HistoryLog(tmp_path)
        store.attach_history(log)
        _stream(store, jobs=3, ticks=7)
        pre = store.job_rollups("job-001")["metrics"]["gpu_busy"]["stats"]
        pre_jobs = _strip_clocks(store.jobs_summary())
        log.rotate()
        stats = log.compact(retain=0, resolution=0.5)
        assert stats["segments_compacted"] == 1
        log.close()

        fresh = FleetStore(clock=lambda: 20.0)
        fresh.attach_history(HistoryLog(tmp_path))
        post = fresh.job_rollups("job-001")["metrics"]["gpu_busy"]["stats"]
        assert post == pre  # count/sum/min/max/avg/last all bit-exact
        assert _strip_clocks(fresh.jobs_summary()) == pre_jobs

    def test_history_summary_and_metrics_families(self, tmp_path):
        store = FleetStore()
        store.attach_history(HistoryLog(tmp_path))
        _stream(store, jobs=1, ticks=1)
        summary = store.history_summary()
        assert summary["enabled"]
        assert summary["appended"] == store.records
        exposition = store.openmetrics()
        assert "fleet_history_segments" in exposition
        assert "fleet_history_appended_total" in exposition


class TestPersistenceOffByteIdentity:
    def test_metrics_and_jobs_output_identical_without_history(
        self, tmp_path
    ):
        """The memory-resident default must not change at all: same
        records, with and without a history log, give byte-identical
        /jobs output, and /metrics differs only by the fleet_history_*
        families (absent entirely with persistence off)."""
        clock = lambda: 42.0  # noqa: E731 - deterministic exposition
        plain = FleetStore(clock=clock)
        durable = FleetStore(clock=clock)
        durable.attach_history(HistoryLog(tmp_path))
        for store in (plain, durable):
            _stream(store, jobs=3, ticks=4)
        plain_jobs = json.dumps(plain.jobs_summary(), sort_keys=True)
        durable_jobs = json.dumps(durable.jobs_summary(), sort_keys=True)
        assert plain_jobs == durable_jobs
        plain_metrics = plain.openmetrics()
        assert "fleet_history" not in plain_metrics
        durable_metrics = "\n".join(
            line for line in durable.openmetrics().splitlines()
            if "fleet_history" not in line
        ) + "\n"
        assert durable_metrics == plain_metrics
        assert (
            plain.job_rollups("job-000") == durable.job_rollups("job-000")
        )


class TestDurableAggregator:
    def test_restart_after_200_jobs_serves_identical_state(self, tmp_path):
        """The acceptance bar: ingest >= 200 jobs, restart from the
        same --data-dir, and every job summary and lifetime aggregate
        matches (modulo the re-based staleness clocks)."""
        data = str(tmp_path / "data")
        agg = FleetAggregator(data_dir=data, compact_interval=0)
        with agg:
            _stream(agg.store, jobs=200, ticks=3)
            pre_jobs = _strip_clocks(agg.store.jobs_summary())
            pre_rollups = {
                job: agg.store.job_rollups(job)["metrics"]
                for job in ("job-000", "job-117", "job-199")
            }
            pre_fleet = agg.store.fleet_summary()["metrics"]
        restarted = FleetAggregator(data_dir=data, compact_interval=0)
        with restarted:
            assert restarted.replayed > 0
            assert _strip_clocks(restarted.store.jobs_summary()) == pre_jobs
            for job, metrics in pre_rollups.items():
                assert restarted.store.job_rollups(job)["metrics"] == metrics
            assert restarted.store.fleet_summary()["metrics"] == pre_fleet

    def test_durable_aggregator_defaults_to_retention_tiers(self, tmp_path):
        agg = FleetAggregator(data_dir=str(tmp_path / "d"))
        assert agg.store.tiers  # downsample instead of evict
        plain = FleetAggregator()
        assert not plain.store.tiers

    def test_compact_runs_via_the_service(self, tmp_path):
        agg = FleetAggregator(
            data_dir=str(tmp_path / "d"), compact_interval=0, retain=0
        )
        with agg:
            _stream(agg.store, jobs=2, ticks=3)
            agg.history.rotate()
            stats = agg.compact()
            assert stats["segments_compacted"] == 1
        memory_resident = FleetAggregator()
        assert memory_resident.compact() is None

    def test_bad_retain_raises(self, tmp_path):
        with pytest.raises(ValueError):
            FleetAggregator(data_dir=str(tmp_path / "d"), retain=-1)
