"""Streaming rollups: windows, bucket rings, downsampling, name caps."""

import pytest

from repro.fleet.rollup import MetricRollup, RollupRing, RollupSet, StatWindow


class TestStatWindow:
    def test_empty_window_is_all_zero(self):
        w = StatWindow()
        assert w.as_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "avg": 0.0, "last": 0.0,
        }

    def test_observe_tracks_min_max_avg_last(self):
        w = StatWindow()
        for i, v in enumerate([3.0, 1.0, 2.0]):
            w.observe(v, t=float(i))
        d = w.as_dict()
        assert d["count"] == 3
        assert d["min"] == 1.0
        assert d["max"] == 3.0
        assert d["avg"] == pytest.approx(2.0)
        assert d["last"] == 2.0

    def test_negative_values_do_not_clamp_to_zero(self):
        w = StatWindow()
        w.observe(-5.0)
        assert w.min == -5.0 and w.max == -5.0

    def test_merge_combines_and_keeps_latest_last(self):
        a, b = StatWindow(), StatWindow()
        a.observe(1.0, t=1.0)
        b.observe(9.0, t=5.0)
        b.observe(3.0, t=6.0)
        a.merge(b)
        assert a.count == 3
        assert a.min == 1.0 and a.max == 9.0
        assert a.last == 3.0  # b's last_t is newer

    def test_merge_with_empty_is_identity(self):
        a = StatWindow()
        a.observe(2.0, t=1.0)
        before = a.as_dict()
        a.merge(StatWindow())
        assert a.as_dict() == before


class TestRollupRing:
    def test_points_land_in_resolution_buckets(self):
        ring = RollupRing(resolution=1.0, capacity=8)
        ring.observe(0.2, 1.0)
        ring.observe(0.9, 3.0)
        ring.observe(1.1, 5.0)
        buckets = ring.buckets()
        assert [t for t, _ in buckets] == [0.0, 1.0]
        assert buckets[0][1].count == 2
        assert buckets[0][1].max == 3.0

    def test_capacity_evicts_oldest_bucket(self):
        ring = RollupRing(resolution=1.0, capacity=3)
        for t in range(5):
            ring.observe(float(t), 1.0)
        assert [t for t, _ in ring.buckets()] == [2.0, 3.0, 4.0]

    def test_late_point_past_oldest_bucket_is_counted_dropped(self):
        ring = RollupRing(resolution=1.0, capacity=2)
        for t in (0.0, 1.0, 2.0):
            ring.observe(t, 1.0)
        assert not ring.observe(0.5, 1.0)  # bucket 0 already evicted
        assert ring.dropped_late == 1

    def test_out_of_order_within_retention_updates_in_place(self):
        ring = RollupRing(resolution=1.0, capacity=8)
        ring.observe(0.1, 1.0)
        ring.observe(2.0, 1.0)
        assert ring.observe(0.5, 7.0)  # bucket 0 still retained
        assert ring.buckets()[0][1].max == 7.0

    def test_series_downsamples_on_read_only(self):
        ring = RollupRing(resolution=1.0, capacity=16)
        for t in range(4):
            ring.observe(float(t), float(t))
        coarse = ring.series(resolution=2.0)
        assert [b["t"] for b in coarse] == [0.0, 2.0]
        assert coarse[0]["count"] == 2 and coarse[0]["max"] == 1.0
        assert len(ring) == 4  # retention untouched

    def test_series_finer_than_native_returns_native(self):
        ring = RollupRing(resolution=1.0, capacity=8)
        ring.observe(0.0, 1.0)
        assert ring.series(0.25) == ring.series()

    def test_bad_parameters_raise(self):
        with pytest.raises(ValueError):
            RollupRing(resolution=0)
        with pytest.raises(ValueError):
            RollupRing(capacity=0)
        with pytest.raises(ValueError):
            RollupRing().series(-1.0)


class TestRollupSet:
    def test_snapshot_has_stats_and_series_per_metric(self):
        rs = RollupSet(resolution=1.0)
        rs.observe("a", 0.5, 2.0)
        rs.observe("a", 1.5, 4.0)
        snap = rs.snapshot()
        assert snap["a"]["stats"]["count"] == 2
        assert len(snap["a"]["series"]) == 2

    def test_metric_name_cap_is_counted_never_silent(self):
        rs = RollupSet(max_metrics=2)
        assert rs.observe("a", 0.0, 1.0)
        assert rs.observe("b", 0.0, 1.0)
        assert not rs.observe("c", 0.0, 1.0)
        assert rs.dropped_names == 1
        assert rs.names() == ["a", "b"]
        # existing names keep folding after the cap trips
        assert rs.observe("a", 1.0, 2.0)

    def test_metric_rollup_snapshot_passes_resolution_through(self):
        m = MetricRollup(resolution=1.0, capacity=8)
        for t in range(4):
            m.observe(float(t), 1.0)
        assert len(m.snapshot(2.0)["series"]) == 2


class TestStatWindowMergeAdopt:
    def test_merge_into_empty_adopts_last_even_at_negative_time(self):
        # regression: the old guard `other.last_t >= self.last_t` made
        # an empty window (last_t == 0.0) ignore merges whose newest
        # sample predated the epoch.
        a, b = StatWindow(), StatWindow()
        b.observe(5.0, t=-1.0)
        a.merge(b)
        assert a.last == 5.0 and a.last_t == -1.0
        assert a.count == 1 and a.min == 5.0 and a.max == 5.0

    def test_merge_empty_other_is_a_no_op(self):
        a = StatWindow()
        a.observe(2.0, t=1.0)
        a.merge(StatWindow())
        assert a.as_dict()["count"] == 1 and a.last == 2.0

    def test_state_roundtrip(self):
        w = StatWindow()
        w.observe(3.0, t=1.0)
        w.observe(-1.0, t=2.0)
        again = StatWindow.from_state(w.as_state())
        assert again is not None
        assert again.as_state() == w.as_state()

    def test_from_state_rejects_malformed(self):
        assert StatWindow.from_state({"count": -1}) is None
        assert StatWindow.from_state({"count": "x"}) is None
        assert StatWindow.from_state("nope") is None


class TestRollupRingEvictionOrder:
    def test_eviction_is_oldest_by_time_not_insertion_order(self):
        # regression: eviction used dict insertion order.  An
        # out-of-order bucket created *between* retained ones sat at
        # the insertion tail, so at capacity the ring evicted a newer
        # bucket instead — and the late-drop check (min of retained)
        # then let the evicted newer bucket be silently re-created,
        # losing its samples.
        ring = RollupRing(resolution=1.0, capacity=3)
        for t in (0.0, 5.0, 3.0):  # insertion order 0, 5, 3
            ring.observe(t, 1.0)
        ring.observe(7.0, 1.0)  # evicts 0 (oldest either way)
        ring.observe(8.0, 1.0)  # insertion-order eviction took 5 here
        kept = [t for t, _ in ring.buckets()]
        assert kept == [5.0, 7.0, 8.0]  # bucket 3 went, not bucket 5

    def test_late_drop_tracks_evicted_minimum(self):
        ring = RollupRing(resolution=1.0, capacity=3)
        for t in (0.0, 5.0, 3.0, 7.0, 8.0):
            ring.observe(t, 1.0)
        assert not ring.observe(3.5, 1.0)  # below the surviving window
        assert ring.dropped_late == 1
        assert ring.observe(5.5, 1.0)  # oldest retained bucket still live
        assert ring.buckets()[0][1].count == 2  # folded in, not re-created

    def test_spill_receives_evicted_bucket(self):
        spilled = []
        ring = RollupRing(
            resolution=1.0, capacity=2,
            spill=lambda t0, w: spilled.append((t0, w.count)),
        )
        ring.observe(0.0, 1.0)
        ring.observe(0.5, 2.0)
        ring.observe(1.0, 1.0)
        ring.observe(2.0, 1.0)
        assert spilled == [(0.0, 2)]

    def test_absorb_merges_whole_window_into_bucket(self):
        ring = RollupRing(resolution=1.0, capacity=4)
        w = StatWindow()
        w.observe(1.0, t=0.1)
        w.observe(3.0, t=0.2)
        assert ring.absorb(0.4, w)
        t0, bucket = ring.buckets()[0]
        assert t0 == 0.0 and bucket.count == 2 and bucket.max == 3.0

    def test_absorb_empty_window_is_accepted_without_a_bucket(self):
        ring = RollupRing(resolution=1.0, capacity=4)
        assert ring.absorb(0.0, StatWindow())
        assert len(ring) == 0


class TestRetentionTiers:
    def test_evicted_buckets_downsample_into_coarser_tier(self):
        m = MetricRollup(resolution=1.0, capacity=4, tiers=((10, 8),))
        for t in range(8):
            m.observe(float(t), float(t))
        # buckets 0..3 were evicted from the fine ring into the 10x tier
        fine = {b["t"] for b in m.ring.series()}
        assert fine == {4.0, 5.0, 6.0, 7.0}
        coarse = m.tiers[1].series()
        assert len(coarse) == 1
        assert coarse[0]["t"] == 0.0 and coarse[0]["count"] == 4

    def test_series_stitches_tiers_without_double_counting(self):
        m = MetricRollup(resolution=1.0, capacity=4, tiers=((10, 8),))
        for t in range(8):
            m.observe(float(t), 1.0)
        series = m.series(resolution=10.0)
        assert sum(b["count"] for b in series) == 8

    def test_default_series_covers_both_tiers_at_native_resolution(self):
        m = MetricRollup(resolution=1.0, capacity=4, tiers=((10, 8),))
        for t in range(8):
            m.observe(float(t), 1.0)
        series = m.series()
        assert sum(b["count"] for b in series) == 8
        assert series[0]["t"] == 0.0 and series[-1]["t"] == 7.0

    def test_snapshot_reports_tier_depths(self):
        m = MetricRollup(resolution=1.0, capacity=4, tiers=((10, 8), (100, 8)))
        for t in range(8):
            m.observe(float(t), 1.0)
        tiers = m.snapshot()["tiers"]
        assert [t["resolution"] for t in tiers] == [1.0, 10.0, 100.0]
        assert tiers[1]["buckets"] == 1

    def test_single_tier_snapshot_has_no_tiers_key(self):
        m = MetricRollup(resolution=1.0, capacity=4)
        m.observe(0.0, 1.0)
        assert "tiers" not in m.snapshot()

    def test_bad_tier_factor_raises(self):
        with pytest.raises(ValueError):
            MetricRollup(resolution=1.0, capacity=8, tiers=((1, 8),))

    def test_rollup_set_absorb_folds_into_named_metric(self):
        rs = RollupSet(resolution=1.0)
        w = StatWindow()
        w.observe(2.0, t=0.5)
        assert rs.absorb("gpu_busy", 0.5, w)
        assert rs.snapshot()["gpu_busy"]["stats"]["count"] == 1
