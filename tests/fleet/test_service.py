"""`FleetAggregator` + `FleetSink`: the assembled service, end to end."""

import json
import time
import urllib.request

import pytest

from repro.fleet import FleetAggregator, FleetSink
from repro.fleet.sink import LineClient
from repro.telemetry.series import SamplePoint


def wait_until(cond, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def get_json(url):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return json.loads(resp.read())


def point(name, value, t=0.0, **labels):
    return SamplePoint(
        t=t, name=name, labels=tuple(sorted(labels.items())), value=value
    )


class TestLineClient:
    def test_pipe_target_writes_ndjson(self, tmp_path):
        path = tmp_path / "out.ndjson"
        with open(path, "wb") as fh:
            client = LineClient(fh)
            assert client.send({"kind": "job_start", "job": "j"})
            client.close()
        lines = path.read_bytes().splitlines()
        assert json.loads(lines[0])["job"] == "j"

    def test_unreachable_target_warns_once_then_counts_drops(self):
        client = LineClient("127.0.0.1:1")  # nothing listens on port 1
        with pytest.warns(RuntimeWarning, match="degraded"):
            assert not client.send({"kind": "job_start", "job": "j"})
        # no second warning for the same failure kind, just accounting
        assert not client.send({"kind": "job_start", "job": "j"})
        assert client.disabled
        assert client.dropped == 2 and client.sent == 0
        assert client.dropped_lines == 2
        assert client.drops_by_kind == {"ConnectionRefusedError": 2}

    def test_bad_target_type_disables_not_raises(self):
        client = LineClient(42)
        with pytest.warns(RuntimeWarning):
            assert not client.send({"kind": "job_start", "job": "j"})


class TestFleetSinkEndToEnd:
    def test_job_stream_over_the_socket(self):
        with FleetAggregator() as agg:
            sink = FleetSink(agg.ingest_address, job="job-1",
                             meta={"app": "hpl"})
            sink.open({"ntasks": 4, "seed": 7})
            for i in range(5):
                sink.emit(i * 0.05, [
                    point("gpu_busy_fraction", 0.5 + i / 10, t=i * 0.05),
                    point("node_gpu_busy_fraction", 0.4, t=i * 0.05,
                          node="dirac03"),
                ])
            sink.set_job_outcome("ok", ranks={0: "completed", 1: "aborted"},
                                 wallclock=2.0)
            sink.close()
            store = agg.store
            assert wait_until(
                lambda: store.registry.job("job-1") is not None
                and store.registry.job("job-1").state == "finished"
            )
            record = store.registry.job("job-1")
            assert record.status == "ok"
            assert record.meta["app"] == "hpl"
            assert record.meta["ntasks"] == 4
            assert record.ranks["1"] == "aborted"
            assert record.wallclock == 2.0
            assert record.nodes == {"dirac03"}
            # aborted rank published an explicit rank_status record too
            payload = get_json(agg.http_url + "/jobs/job-1/rollups")
            assert payload["metrics"]["gpu_busy_fraction"]["stats"]["count"] \
                == 5
            assert store.lag.count > 0  # hts stamps measured ingest lag

    def test_sink_survives_a_dead_aggregator(self):
        # publishing is asynchronous now: open() buffers and returns,
        # the drain thread warns and retries in the background, and
        # close() accounts whatever could never be delivered.
        sink = FleetSink("127.0.0.1:1", job="doomed", flush_timeout=0.5)
        sink.open({})
        sink.emit(0.0, [point("m", 1.0)])
        sink.close()  # must not raise
        assert sink.client.dropped > 0
        assert "unflushed" in sink.client.drops_by_kind

    def test_empty_job_id_is_rejected(self):
        with pytest.raises(ValueError):
            FleetSink("127.0.0.1:1", job="")


class TestAggregatorLifecycle:
    def test_tail_loop_follows_a_growing_file(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text("", encoding="utf-8")
        with FleetAggregator(tails=[str(path)], tail_interval=0.02) as agg:
            line = json.dumps({
                "kind": "sample", "t": 0.1,
                "points": [{"name": "m", "labels": {}, "value": 1.0}],
            })
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
            assert wait_until(lambda: agg.store.samples == 1)
        # stop() closed the tailed job stream
        assert agg.store.registry.job("live").state == "finished"

    def test_restart_with_forwarding_reattaches_cleanly(self):
        # stop() must detach the forwarder from the store, or the
        # second start() refuses with "store already has a forwarder"
        head = FleetAggregator().start()
        try:
            leaf = FleetAggregator(forward=head.ingest_address,
                                   forward_interval=0.05)
            leaf.start()
            leaf.stop()
            assert leaf.store.forwarder is None
            leaf.start()
            assert leaf.store.forwarder is leaf.forwarder
            leaf.stop()
        finally:
            head.stop()

    def test_stop_is_idempotent_and_endpoints_require_start(self):
        agg = FleetAggregator()
        with pytest.raises(RuntimeError):
            agg.ingest_address
        agg.start()
        agg.stop()
        agg.stop()

    def test_prebuilt_store_and_kwargs_conflict(self):
        from repro.fleet.store import FleetStore

        with pytest.raises(ValueError):
            FleetAggregator(store=FleetStore(), resolution=0.1)

    def test_add_tail_while_running(self, tmp_path):
        path = tmp_path / "late.jsonl"
        line = json.dumps({
            "kind": "sample", "t": 0.0,
            "points": [{"name": "m", "labels": {}, "value": 2.0}],
        })
        path.write_text(line + "\n", encoding="utf-8")
        with FleetAggregator(tail_interval=0.02) as agg:
            agg.add_tail(str(path), job="late")
            assert wait_until(lambda: agg.store.samples == 1)


class TestConcurrentJobs:
    def test_many_concurrent_publishers(self):
        """The acceptance floor: >= 200 jobs streaming at once."""
        n = 200
        with FleetAggregator() as agg:
            sinks = [
                FleetSink(agg.ingest_address, job=f"job-{i:03d}")
                for i in range(n)
            ]
            for i, sink in enumerate(sinks):
                sink.open({"ntasks": 1, "seed": i})
            for tick in range(3):
                for sink in sinks:
                    sink.emit(tick * 0.05, [
                        point("gpu_busy_fraction", 0.5, t=tick * 0.05),
                    ])
            store = agg.store
            assert wait_until(
                lambda: store.samples == n * 3, timeout=30.0
            ), f"only {store.samples}/{n * 3} samples arrived"
            counts = store.registry.counts()
            assert counts["running"] == n
            for sink in sinks:
                sink.set_job_outcome("ok")
                sink.close()
            assert wait_until(
                lambda: store.registry.counts()["finished"] == n,
                timeout=30.0,
            )
            assert store.parse_errors == 0
            assert store.dropped == 0
            payload = get_json(agg.http_url + "/jobs")
            assert payload["counts"]["finished"] == n
