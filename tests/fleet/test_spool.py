"""`Spool`: the durable publisher-side write-ahead log."""

import os

from repro.fleet.chaos import tear_tail
from repro.fleet.spool import Spool, pending_spools, spool_paths


def line(seq, pub="pub-a"):
    # spool lines are stamped wire lines: pub + seq
    return f'{{"kind": "x", "pub": "{pub}", "seq": {seq}}}\n'.encode()


class TestAppendReadAck:
    def test_roundtrip_in_order(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(5):
            assert spool.append(seq, line(seq))
        assert spool.depth == 5
        assert spool.next_seq == 5
        got = spool.read_after(-1)
        assert [s for s, _ in got] == [0, 1, 2, 3, 4]
        assert got[2][1] == line(2)
        spool.close()

    def test_read_after_skips_acked_prefix(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(6):
            spool.append(seq, line(seq))
        spool.ack(2)
        assert spool.depth == 3
        assert [s for s, _ in spool.read_after(spool.acked_seq)] == [3, 4, 5]
        spool.close()

    def test_read_after_limit(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(10):
            spool.append(seq, line(seq))
        assert [s for s, _ in spool.read_after(-1, limit=3)] == [0, 1, 2]
        spool.close()


class TestResume:
    def test_reopen_resumes_cursor_and_next_seq(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(4):
            spool.append(seq, line(seq))
        spool.ack(1)
        spool.close()  # persists the meta

        resumed = Spool(str(tmp_path), "pub-a")
        assert resumed.acked_seq == 1
        assert resumed.max_seq == 3
        assert resumed.next_seq == 4
        assert resumed.depth == 2
        assert [s for s, _ in resumed.read_after(resumed.acked_seq)] == [2, 3]
        resumed.close()

    def test_unclosed_spool_still_recovers_from_the_file(self, tmp_path):
        # no close(): the meta lags the file, like after a kill -9
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(7):
            spool.append(seq, line(seq))
        path = spool.path
        del spool

        resumed = Spool(str(tmp_path), "pub-a")
        assert resumed.path == path
        assert resumed.max_seq == 6
        assert resumed.next_seq == 7
        resumed.close()

    def test_torn_tail_is_repaired_not_fatal(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a")
        for seq in range(5):
            spool.append(seq, line(seq))
        spool.close()
        tear_tail(spool.path, drop_bytes=4)  # kill -9 mid-append

        resumed = Spool(str(tmp_path), "pub-a")
        # the torn final record is unreadable, but every complete line
        # survives and the sequence numbering stays correct.  (Both the
        # missing newline and the unreadable fragment are counted.)
        assert resumed.torn_lines == 2
        # the torn record was never durable: seq 4 is simply gone and
        # the publisher will stamp its next record seq 4 again.
        assert resumed.max_seq == 3
        assert resumed.next_seq == 4
        assert [s for s, _ in resumed.read_after(-1)] == [0, 1, 2, 3]
        resumed.close()


class TestCompaction:
    def test_fully_acked_large_spool_truncates(self, tmp_path):
        spool = Spool(str(tmp_path), "pub-a", compact_bytes=64)
        for seq in range(20):
            spool.append(seq, line(seq))
        spool.ack(19)
        assert os.path.getsize(spool.path) == 0
        assert spool.depth == 0
        # sequence numbering continues across the truncation
        assert spool.next_seq == 20
        spool.append(20, line(20))
        assert [s for s, _ in spool.read_after(spool.acked_seq)] == [20]
        spool.close()

    def test_truncation_persists_the_cursor(self, tmp_path):
        # kill -9 right after a truncation: the on-disk cursor must
        # already cover the dropped records, or next_seq would regress
        # and re-issue sequence numbers the aggregator dedups silently
        spool = Spool(str(tmp_path), "pub-a", compact_bytes=64)
        for seq in range(20):
            spool.append(seq, line(seq))
        spool.ack(19)
        assert os.path.getsize(spool.path) == 0
        del spool  # no close()

        resumed = Spool(str(tmp_path), "pub-a")
        assert resumed.acked_seq == 19
        assert resumed.next_seq == 20
        resumed.close()


class TestPendingSpools:
    def test_lists_only_spools_with_backlog(self, tmp_path):
        drained = Spool(str(tmp_path), "done")
        drained.append(0, line(0, pub="done"))
        drained.ack(0)
        drained.close()
        backlog = Spool(str(tmp_path), "stuck")
        for seq in range(3):
            backlog.append(seq, line(seq, pub="stuck"))
        backlog.close()

        entries = pending_spools(str(tmp_path))
        assert [e["pub"] for e in entries] == ["stuck"]
        assert entries[0]["depth"] == 3

    def test_spool_without_meta_sidecar_is_discovered(self, tmp_path):
        # a publisher hard-killed before its cursor ever persisted
        # leaves a spool file with no sidecar; the backlog must still
        # be discoverable (pub id recovered from the stamped records)
        spool = Spool(str(tmp_path), "killed:job/0")
        for seq in range(4):
            spool.append(seq, line(seq, pub="killed:job/0"))
        os.remove(spool.meta_path)
        del spool  # no close()

        entries = pending_spools(str(tmp_path))
        assert [e["pub"] for e in entries] == ["killed:job/0"]
        assert entries[0]["depth"] == 4

    def test_empty_or_missing_directory(self, tmp_path):
        assert pending_spools(str(tmp_path)) == []
        assert pending_spools(str(tmp_path / "missing")) == []

    def test_distinct_pubs_never_collide(self, tmp_path):
        # sanitization maps awkward pubs onto distinct files
        a = spool_paths(str(tmp_path), "job:a/b")[0]
        b = spool_paths(str(tmp_path), "job:a_b")[0]
        assert a != b
