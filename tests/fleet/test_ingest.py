"""Ingest transports: socket listener + JSONL tailer (torn writes)."""

import json
import socket
import time

import pytest

from repro.fleet.ingest import IngestServer, JsonlTailIngester
from repro.fleet.protocol import decode_line, encode_record
from repro.fleet.store import FleetStore


def wait_until(cond, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


class TestDecodeLine:
    @pytest.mark.parametrize("bad", [
        b"", b"   \n", b"{not json", b'"a string"', b"[1,2]",
        b'{"no": "kind"}', b'{"kind": 7}', b"\xff\xfe garbage",
    ])
    def test_malformed_lines_decode_to_none(self, bad):
        assert decode_line(bad) is None

    def test_roundtrip(self):
        record = {"kind": "sample", "job": "j", "t": 1.5, "points": []}
        assert decode_line(encode_record(record)) == record


class TestIngestServer:
    def test_socket_stream_reaches_the_store(self):
        store = FleetStore()
        server = IngestServer(store).start()
        try:
            with socket.create_connection(server.address, timeout=5.0) as s:
                s.sendall(encode_record(
                    {"kind": "job_start", "job": "j1"}
                ))
                s.sendall(b"this is not json\n")  # counted, not fatal
                s.sendall(encode_record({
                    "kind": "sample", "job": "j1", "t": 0.0,
                    "points": [{"name": "m", "labels": {}, "value": 1.0}],
                }))
            assert wait_until(lambda: store.samples == 1)
            assert store.parse_errors == 1
            assert store.registry.job("j1") is not None
        finally:
            server.stop()

    def test_connection_count_tracks_publishers(self):
        store = FleetStore()
        server = IngestServer(store).start()
        try:
            with socket.create_connection(server.address, timeout=5.0) as s:
                s.sendall(encode_record({"kind": "job_start", "job": "x"}))
                assert wait_until(lambda: store.connections == 1)
            assert wait_until(lambda: store.connections == 0)
        finally:
            server.stop()


class TestJsonlTailTornWrites:
    """The satellite contract: ingest mirrors journal repair semantics."""

    def test_torn_final_line_is_retained_until_complete(self, tmp_path):
        path = tmp_path / "job.jsonl"
        store = FleetStore()
        full = json.dumps({
            "kind": "sample", "t": 0.1,
            "points": [{"name": "m", "labels": {}, "value": 2.0}],
        })
        path.write_bytes((full + "\n").encode() + full[:17].encode())
        tailer = JsonlTailIngester(str(path), store, job="j1")
        tailer.poll()
        assert store.samples == 1  # the whole line landed
        assert store.parse_errors == 0  # the fragment is buffered, not judged
        # the writer finishes the append -> the fragment completes
        with open(path, "ab") as fh:
            fh.write((full[17:] + "\n").encode())
        tailer.poll()
        assert store.samples == 2
        assert store.parse_errors == 0

    def test_torn_line_that_never_completes_counts_once_at_finish(
        self, tmp_path
    ):
        path = tmp_path / "job.jsonl"
        path.write_bytes(b'{"kind": "sample", "t"')
        store = FleetStore()
        tailer = JsonlTailIngester(str(path), store, job="j1")
        tailer.poll()
        assert store.parse_errors == 0
        tailer.finish()
        assert store.parse_errors == 1
        tailer.finish()  # idempotent
        assert store.parse_errors == 1

    def test_interior_garbage_is_counted_and_skipped(self, tmp_path):
        path = tmp_path / "job.jsonl"
        good = json.dumps({
            "kind": "sample", "t": 0.2,
            "points": [{"name": "m", "labels": {}, "value": 1.0}],
        })
        path.write_text(
            good + "\n" + "NOT JSON AT ALL\n" + good + "\n", encoding="utf-8"
        )
        store = FleetStore()
        JsonlTailIngester(str(path), store, job="j1").poll()
        assert store.samples == 2
        assert store.parse_errors == 1

    def test_truncated_file_resets_instead_of_reading_a_torn_middle(
        self, tmp_path
    ):
        path = tmp_path / "job.jsonl"
        line = json.dumps({"kind": "sample", "t": 0.0, "points": []}) + "\n"
        path.write_text(line * 3, encoding="utf-8")
        store = FleetStore()
        tailer = JsonlTailIngester(str(path), store, job="j1")
        tailer.poll()
        assert store.samples == 3
        path.write_text(line, encoding="utf-8")  # rewritten, shorter
        tailer.poll()
        assert store.samples == 4  # re-read from offset 0, no crash

    def test_missing_file_polls_zero(self, tmp_path):
        store = FleetStore()
        tailer = JsonlTailIngester(str(tmp_path / "nope.jsonl"), store)
        assert tailer.poll() == 0


class TestJsonlReplay:
    def test_replaying_a_real_sink_file_maps_meta_and_samples(self, tmp_path):
        from repro import IpmConfig, JobSpec, TelemetryConfig, run_job

        path = tmp_path / "telemetry.jsonl"
        run_job(JobSpec(
            app="square", ntasks=1,
            ipm=IpmConfig(telemetry=TelemetryConfig(
                enabled=True, sinks=("jsonl",), jsonl_path=str(path),
            )),
        ))
        store = FleetStore()
        tailer = JsonlTailIngester(str(path), store)
        assert tailer.replay() > 0
        record = store.registry.job("telemetry")  # job id from the filename
        assert record is not None
        assert record.state == "finished"
        assert record.meta.get("ntasks") == 1
        assert store.samples > 0
        rollups = store.job_rollups("telemetry")
        assert "gpu_busy_fraction" in rollups["metrics"]

    def test_finish_without_any_job_start_sends_no_job_end(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        store = FleetStore()
        tailer = JsonlTailIngester(str(path), store, job="ghost")
        tailer.replay()
        assert store.registry.job("ghost") is None


class TestJsonlTailJobNaming:
    def test_job_id_derives_from_file_stem(self, tmp_path):
        path = tmp_path / "run-a.jsonl"
        path.write_text("")
        assert JsonlTailIngester(str(path), FleetStore()).job == "run-a"

    def test_bare_jsonl_filename_never_yields_an_empty_job(self, tmp_path):
        # regression: a file named exactly ".jsonl" stripped its suffix
        # down to "" and every record was filed under the empty job id.
        path = tmp_path / ".jsonl"
        path.write_text("")
        tailer = JsonlTailIngester(str(path), FleetStore())
        assert tailer.job == ".jsonl"

    def test_non_jsonl_name_is_used_whole(self, tmp_path):
        path = tmp_path / "sink.log"
        path.write_text("")
        assert JsonlTailIngester(str(path), FleetStore()).job == "sink.log"

    def test_explicit_empty_job_raises(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="non-empty"):
            JsonlTailIngester(str(path), FleetStore(), job="")

    def test_explicit_job_overrides_the_stem(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text("")
        assert JsonlTailIngester(str(path), FleetStore(), job="x").job == "x"
