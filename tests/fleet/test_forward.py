"""Leaf→head federation: exact rollups, rack trees, head restarts."""

import time

from repro.fleet import ChaosPlan, ChaosProxy, FleetAggregator


def wait_until(cond, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def feed(store, job, n, scale=1.0, t0=0.0):
    """One whole job stream: start, n samples, clean end.

    Values are dyadic rationals (multiples of 0.125) on purpose: their
    float sums are exact, so "head == direct ingest" can be asserted
    byte-for-byte even when a window is flushed in two partial pieces
    (float addition is only associative when nothing rounds).
    """
    store.ingest({"kind": "job_start", "job": job, "source": "test",
                  "meta": {"app": "hpl"}})
    for i in range(n):
        store.ingest({
            "kind": "sample", "job": job, "t": t0 + i * 0.02,
            "points": [
                {"name": "gpu_busy_fraction", "labels": {},
                 "value": (i % 8) * 0.125 * scale},
                {"name": "node_gpu_busy_fraction",
                 "labels": {"node": "dirac01"}, "value": 0.5 * scale},
            ],
        })
    store.ingest({"kind": "job_end", "job": job, "status": "ok",
                  "source": "test"})


def metric_count(store, job, name="gpu_busy_fraction"):
    """Folded observation count for one job metric; None until known."""
    payload = store.job_rollups(job)
    if payload is None:
        return None
    return payload["metrics"].get(name, {}).get("stats", {}).get("count")


def comparable(store, job):
    """The job's converged state, stripped of wall-clock noise."""
    payload = store.job_rollups(job)
    return {
        "state": payload["state"],
        "status": payload["status"],
        "metrics": payload["metrics"],
    }


class TestLeafToHead:
    def test_head_rollups_equal_direct_ingest(self):
        """A leaf forwarding at the store's native resolution makes
        the head's job rollups identical to single-aggregator ingest —
        the federation invariant everything else leans on."""
        n = 40
        with FleetAggregator() as head:
            with FleetAggregator(forward=head.ingest_address,
                                 forward_interval=0.05) as leaf:
                feed(leaf.store, "fed-job", n)
                # leaf.stop() runs the final forwarder flush
            direct = FleetAggregator().store
            feed(direct, "fed-job", n)
            store = head.store
            assert wait_until(
                lambda: store.registry.job("fed-job") is not None
                and store.registry.job("fed-job").state == "finished"
                and metric_count(store, "fed-job") == n
            )
            assert comparable(store, "fed-job") == \
                comparable(direct, "fed-job")
            totals = store.publishers_summary()["totals"]
            assert totals["duplicates"] == 0
            assert totals["gap_records"] == 0

    def test_windows_compress_the_upstream_stream(self):
        """Federation ships aggregated windows, not raw samples."""
        with FleetAggregator() as head:
            with FleetAggregator(forward=head.ingest_address,
                                 forward_interval=0.05) as leaf:
                feed(leaf.store, "fat-job", 200)
                assert wait_until(
                    lambda: leaf.forwarder.samples_folded == 200
                )
                forwarder = leaf.forwarder
                assert forwarder.summary()["lifecycle_forwarded"] == 2
            assert wait_until(
                lambda: metric_count(head.store, "fat-job") == 200
            )
            # every observation arrived, but as compacted windows: the
            # upstream link carried far fewer records than samples.
            assert 0 < forwarder.windows_forwarded < 200


class TestRackTree:
    def test_two_leaves_one_head_equals_one_aggregator(self):
        with FleetAggregator() as head:
            with FleetAggregator(forward=head.ingest_address,
                                 forward_interval=0.05) as leaf_a:
                with FleetAggregator(forward=head.ingest_address,
                                     forward_interval=0.05) as leaf_b:
                    feed(leaf_a.store, "rack-a-job", 30, scale=1.0)
                    feed(leaf_b.store, "rack-b-job", 25, scale=2.0)
            direct = FleetAggregator().store
            feed(direct, "rack-a-job", 30, scale=1.0)
            feed(direct, "rack-b-job", 25, scale=2.0)
            store = head.store
            assert wait_until(
                lambda: store.registry.counts()["finished"] == 2
            )
            for job in ("rack-a-job", "rack-b-job"):
                assert wait_until(
                    lambda j=job: comparable(store, j) == comparable(
                        direct, j)
                ), f"{job} diverged: {comparable(store, job)}"
            # the head's fleet-wide job accounting matches too
            assert store.registry.counts()["finished"] == \
                direct.registry.counts()["finished"]


class TestHeadRestart:
    def test_durable_head_restart_loses_no_accepted_window(self, tmp_path):
        """Kill the head mid-federation; the durable leaf spools, the
        restarted head replays its log, and the rollups converge to
        every sample the leaf accepted — exactly once."""
        head_dir = str(tmp_path / "head")
        leaf_dir = str(tmp_path / "leaf")
        head1 = FleetAggregator(data_dir=head_dir).start()
        proxy = ChaosProxy(head1.ingest_address, ChaosPlan(seed=13)).start()
        leaf = FleetAggregator(data_dir=leaf_dir,
                               forward=proxy.address_str,
                               forward_interval=0.05).start()
        try:
            feed(leaf.store, "outage-job", 20, t0=0.0)
            assert wait_until(
                lambda: (metric_count(head1.store, "outage-job") or 0) > 0
            )
            head1.kill()
            # the leaf keeps accepting and spooling during the outage
            feed(leaf.store, "outage-job-2", 20, t0=10.0)
            head2 = FleetAggregator(data_dir=head_dir).start()
            try:
                assert head2.replayed > 0
                proxy.retarget(head2.ingest_address)
                store = head2.store

                def counts():
                    return {job: metric_count(store, job)
                            for job in ("outage-job", "outage-job-2")}

                assert wait_until(
                    lambda: counts() == {"outage-job": 20,
                                         "outage-job-2": 20},
                    timeout=30.0,
                ), f"converged to {counts()}"
                totals = store.publishers_summary()["totals"]
                assert totals["gap_records"] == 0
            finally:
                head2.stop()
        finally:
            leaf.stop()
            proxy.stop()
            if head1.started:
                head1.stop()


class TestForwarderHealth:
    def test_unreachable_head_degrades_leaf_healthz(self, tmp_path):
        """A leaf that cannot reach its head reports itself degraded —
        with the spool depth as evidence — instead of staying green."""
        leaf = FleetAggregator(data_dir=str(tmp_path / "leaf"),
                               forward="127.0.0.1:1",
                               forward_interval=0.05).start()
        try:
            feed(leaf.store, "stranded-job", 10)
            assert wait_until(
                lambda: leaf.forwarder.summary()["spool_depth"] > 0
            )
            health = leaf.store.health_summary()
            assert health["status"] == "degraded"
            assert any("forwarder disconnected" in r
                       for r in health["reasons"])
            assert health["forward"]["spool_depth"] > 0
        finally:
            leaf.stop()
