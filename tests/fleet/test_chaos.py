"""Chaos acceptance: seeded faults, zero accepted-record loss.

Every test drives real sockets through :class:`ChaosProxy` executing a
seed-frozen :class:`ChaosPlan`.  The *schedule* is deterministic;
thread timing is not — so assertions pin invariants (nothing the
pipeline accepted is lost, the head's sequence audit stays clean,
rollups converge after recovery), never timings.
"""

import time

from repro.fleet import (
    ChaosPlan,
    ChaosProxy,
    FleetAggregator,
    ResilientClient,
)
from repro.simt.random import RngStreams


def wait_until(cond, timeout=15.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def sample(job, seq_t, value=1.0):
    return {
        "kind": "sample", "job": job, "t": seq_t,
        "points": [{"name": "m", "labels": {}, "value": value}],
    }


def pub_totals(store):
    return store.publishers_summary()["totals"]


class TestChaosPlan:
    def test_schedule_is_a_pure_function_of_the_seed(self):
        a = ChaosPlan(seed=7, refuse_first=2, refuse_every=5, cut_every=3)
        b = ChaosPlan(seed=7, refuse_first=2, refuse_every=5, cut_every=3)
        rng_a, rng_b = RngStreams(7), RngStreams(7)
        for index in range(20):
            assert a.refuses(index) == b.refuses(index)
            assert a.cut_point(index, rng_a) == b.cut_point(index, rng_b)

    def test_different_seeds_draw_different_cut_points(self):
        plan = ChaosPlan(cut_every=1, cut_after_bytes=(32, 4096))
        points = {
            ChaosPlan(seed=s, cut_every=1, cut_after_bytes=(32, 4096))
            .cut_point(0, RngStreams(s))
            for s in range(8)
        }
        assert len(points) > 1
        del plan

    def test_refusal_windows(self):
        plan = ChaosPlan(refuse_first=2, refuse_every=4)
        refused = [i for i in range(12) if plan.refuses(i)]
        assert refused == [0, 1, 3, 7, 11]

    def test_delay_jitter_stays_in_band(self):
        plan = ChaosPlan(seed=3, delay=0.01, delay_jitter=0.5)
        rng = RngStreams(3)
        for index in range(10):
            d = plan.chunk_delay(index, rng)
            assert 0.005 <= d <= 0.015


class TestRefusalOutage:
    def test_startup_refusals_lose_nothing(self, tmp_path):
        """The aggregator's front door RSTs the first connections; the
        spool holds everything until backoff wins.  (A refusal here is
        accept-then-RST, which a publisher can only *observe* through
        the missing acks — the durable pipeline is what turns that
        into redelivery.)"""
        plan = ChaosPlan(seed=11, refuse_first=3)
        with FleetAggregator() as agg:
            with ChaosProxy(agg.ingest_address, plan) as proxy:
                client = ResilientClient(
                    proxy.address_str,
                    label="chaos",
                    pub="refused",
                    spool_dir=str(tmp_path),
                    retry_base=0.01,
                )
                n = 40
                for i in range(n):
                    assert client.send(sample("outage", i * 0.05))
                assert client.flush(15.0), client.stats()
                client.close()
                assert proxy.refused == 3
            store = agg.store
            assert wait_until(lambda: store.samples == n)
            totals = pub_totals(store)
            assert totals["received"] == n
            assert totals["duplicates"] == 0
            assert totals["gap_records"] == 0


class TestTornCuts:
    def test_mid_line_cuts_deliver_exactly_once(self, tmp_path):
        """Every connection is cut mid-stream; the durable spool
        re-offers the unacknowledged tail and the head's sequence
        audit folds each record exactly once."""
        # every connection gets cut, but the window leaves room for at
        # least one complete record first — chaos, not a livelock.
        plan = ChaosPlan(seed=23, cut_every=1, cut_after_bytes=(220, 1600))
        with FleetAggregator() as agg:
            with ChaosProxy(agg.ingest_address, plan) as proxy:
                client = ResilientClient(
                    proxy.address_str,
                    label="chaos",
                    pub="torn",
                    spool_dir=str(tmp_path),
                    retry_base=0.01,
                )
                n = 30
                for i in range(n):
                    assert client.send(sample("torn-job", i * 0.05))
                assert client.flush(30.0), client.stats()
                client.close()
                assert proxy.cuts >= 1
            store = agg.store
            assert wait_until(lambda: store.samples == n)
            totals = pub_totals(store)
            # replays are allowed (and deduped); losses are not.
            assert totals["received"] == n
            assert totals["gap_records"] == 0
            assert store.job_rollups("torn-job")["metrics"]["m"][
                "stats"]["count"] == n

    def test_non_durable_overflow_is_an_audited_gap(self):
        """Queue-only clients may shed load under a long outage —
        but the loss is *visible* at the head as a sequence gap."""
        client = ResilientClient(
            "127.0.0.1:1", label="chaos", queue_max=4,
            retry_base=0.01, retry_attempts=2, retry_max_delay=0.05,
        )
        with FleetAggregator() as agg:
            for i in range(10):
                client.send(sample("shed", i * 0.05))
            assert wait_until(lambda: client.dropped_lines >= 1)
            client.target = agg.ingest_address
            assert client.flush(15.0)
            client.close()
            shed = client.dropped_lines
            store = agg.store
            assert wait_until(lambda: store.samples == 10 - shed)
            totals = pub_totals(store)
            assert totals["gap_records"] == shed
            health = store.health_summary()
            assert health["status"] == "degraded"
            assert any("sequence gaps" in r for r in health["reasons"])


class TestPartitionHeals:
    def test_pause_resume_loses_nothing(self, tmp_path):
        with FleetAggregator() as agg:
            with ChaosProxy(agg.ingest_address, ChaosPlan(seed=5)) as proxy:
                client = ResilientClient(
                    proxy.address_str,
                    label="chaos",
                    pub="partition",
                    spool_dir=str(tmp_path),
                    retry_base=0.01,
                    retry_max_delay=0.2,
                )
                for i in range(10):
                    client.send(sample("part-job", i * 0.05))
                assert client.flush(15.0)
                proxy.pause()  # the partition: pipes drop, port closes
                for i in range(10, 25):
                    assert client.send(sample("part-job", i * 0.05))
                # accepted records persist on disk during the outage
                assert wait_until(lambda: client.spool_depth > 0)
                proxy.resume()
                assert client.flush(30.0), client.stats()
                stats = client.stats()
                client.close()
                assert stats["reconnects"] >= 1
            store = agg.store
            assert wait_until(lambda: store.samples == 25)
            totals = pub_totals(store)
            assert totals["received"] == 25
            assert totals["gap_records"] == 0


class TestAggregatorKill:
    def test_kill_then_restart_on_same_data_dir_converges(self, tmp_path):
        """An in-process kill -9 of a durable aggregator: the restarted
        service replays its log, publishers reconnect through the
        (retargeted) proxy, and every accepted record lands exactly
        once."""
        data_dir = str(tmp_path / "agg")
        spool_dir = str(tmp_path / "spool")
        first = FleetAggregator(data_dir=data_dir).start()
        with ChaosProxy(first.ingest_address, ChaosPlan(seed=9)) as proxy:
            client = ResilientClient(
                proxy.address_str,
                label="chaos",
                pub="survivor",
                spool_dir=spool_dir,
                retry_base=0.01,
                retry_max_delay=0.2,
            )
            for i in range(12):
                client.send(sample("kill-job", i * 0.05))
            assert client.flush(15.0)
            first.kill()
            # a frozen store reports itself degraded, not healthy
            health = first.store.health_summary()
            assert health["status"] == "degraded"
            assert any("frozen" in r for r in health["reasons"])
            # records accepted during the outage spool locally
            for i in range(12, 30):
                assert client.send(sample("kill-job", i * 0.05))
            second = FleetAggregator(data_dir=data_dir).start()
            try:
                assert second.replayed > 0
                proxy.retarget(second.ingest_address)
                assert client.flush(30.0), client.stats()
                client.close()
                store = second.store
                assert wait_until(lambda: store.samples == 30)
                totals = pub_totals(store)
                assert totals["received"] == 30
                assert totals["duplicates"] == 0
                assert totals["gap_records"] == 0
                count = store.job_rollups("kill-job")["metrics"]["m"][
                    "stats"]["count"]
                assert count == 30
            finally:
                second.stop()
