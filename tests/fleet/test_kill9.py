"""kill -9 a real aggregator subprocess mid-sweep; nothing is lost.

The out-of-process acceptance for the whole resilience stack: an
actual ``python -m repro fleet serve`` process is SIGKILLed while a
durable sweep streams into it, then restarted on the same ingest port
and ``--data-dir``.  Three things must hold afterwards:

* the sweep's results are byte-identical to a fleet-less run (the
  pipeline is pure observability, even through a crash);
* the restarted aggregator replays its (possibly torn) log and — once
  the spools drain — converges to every record a clean run would
  hold, with a clean sequence audit;
* the spool directory ends empty: nothing accepted was dropped, and
  nothing is left behind either.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import repro
from repro import IpmConfig, JobSpec, SweepRunner, TelemetryConfig
from repro.__main__ import EXIT_OK, main
from repro.fleet import FleetAggregator
from repro.fleet.spool import pending_spools

SPECS = [
    JobSpec(
        app="square", ntasks=2, seed=s,
        ipm=IpmConfig(telemetry=TelemetryConfig(
            enabled=True, sinks=("memory",),
        )),
    )
    for s in (1, 2, 3, 4)
]


def wait_until(cond, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


def _pickles(report):
    return [r.report_pickle for r in report.results]


def free_port():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def serve_subprocess(port, data_dir, announce):
    """A real `fleet serve` process on a fixed ingest port."""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet", "serve",
            "--ingest", f"127.0.0.1:{port}", "--http", "127.0.0.1:0",
            "--announce", str(announce), "--data-dir", str(data_dir),
            "--compact-interval", "0",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def read_announce(path):
    """The announced endpoints, or None while the file is incomplete."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.loads(fh.read())
    except (OSError, ValueError):
        return None


def query(http_addr, path):
    """GET a query endpoint; None while the server is unreachable."""
    try:
        with urllib.request.urlopen(
            f"http://{http_addr}{path}", timeout=5.0
        ) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError):
        return None


class TestKillDashNine:
    def test_sigkill_mid_sweep_then_restart_converges(self, tmp_path):
        # the fleet-less baseline the streamed results must match
        plain = SweepRunner(mode="serial").run(SPECS)

        port = free_port()
        ingest = f"127.0.0.1:{port}"
        data_dir = tmp_path / "agg-data"
        spool_dir = str(tmp_path / "spool")
        first_announce = tmp_path / "first.json"
        first = serve_subprocess(port, data_dir, first_announce)
        second = None
        runner = SweepRunner(mode="serial", fleet=ingest,
                             fleet_spool=spool_dir)
        try:
            assert wait_until(
                lambda: read_announce(first_announce) is not None
            )
            http1 = read_announce(first_announce)["http"]

            box = {}
            sweep = threading.Thread(
                target=lambda: box.update(report=runner.run(SPECS)),
                daemon=True,
            )
            sweep.start()
            # SIGKILL as soon as the aggregator has demonstrably
            # accepted part of the stream — mid-sweep, mid-stream, and
            # (likely) mid-append in the history log.
            assert wait_until(
                lambda: bool((query(http1, "/jobs") or {}).get("jobs"))
            )
            os.kill(first.pid, signal.SIGKILL)
            first.wait(10.0)

            # the sweep sails through the outage: durable publishers
            # spool, specs keep running, results stay pure.
            sweep.join(120.0)
            assert not sweep.is_alive()
            report = box["report"]
            assert all(r.status == "ok" for r in report.results)
            assert _pickles(report) == _pickles(plain)
            # the aggregator was down at end-of-run, so records are
            # still on disk waiting for it to come back
            assert pending_spools(spool_dir)

            # restart on the same port and data dir; replay recovers
            # everything the dead process had accepted
            second_announce = tmp_path / "second.json"
            second = serve_subprocess(port, data_dir, second_announce)
            assert wait_until(
                lambda: read_announce(second_announce) is not None
            )
            http2 = read_announce(second_announce)["http"]
            assert wait_until(lambda: query(http2, "/history") is not None)
            assert query(http2, "/history")["replayed"] > 0

            # hand the spooled backlog to the restarted process
            assert main(["fleet", "drain", ingest, spool_dir]) == EXIT_OK
            assert pending_spools(spool_dir) == []

            # a clean, never-killed run defines what "converged" means
            with FleetAggregator() as clean:
                with SweepRunner(
                    mode="serial", fleet=clean.ingest_address,
                    fleet_spool=str(tmp_path / "clean-spool"),
                ) as clean_runner:
                    clean_runner.run(SPECS)
                store = clean.store
                assert wait_until(
                    lambda: store.registry.counts()["finished"]
                    == len(SPECS)
                )
                expected = {
                    spec.content_hash(): store.job_rollups(
                        spec.content_hash()
                    )["metrics"]["gpu_busy_fraction"]["stats"]["count"]
                    for spec in SPECS
                }

            def recovered():
                jobs = query(http2, "/jobs")
                if not jobs or jobs["counts"]["finished"] != len(SPECS):
                    return None
                counts = {}
                for spec in SPECS:
                    rollups = query(
                        http2, f"/jobs/{spec.content_hash()}/rollups"
                    )
                    if not rollups:
                        return None
                    counts[spec.content_hash()] = rollups["metrics"][
                        "gpu_busy_fraction"]["stats"]["count"]
                return counts

            assert wait_until(
                lambda: recovered() == expected
            ), f"recovered {recovered()}, expected {expected}"

            # the audit is clean: replays were deduped, nothing gapped
            publishers = query(http2, "/publishers")
            assert publishers["totals"]["gap_records"] == 0
        finally:
            runner.close()
            for proc in (first, second):
                if proc is not None and proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
                    try:
                        proc.wait(15.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(5.0)
