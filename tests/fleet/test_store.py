"""`FleetStore`: ingest semantics, time axes, queries, exposition."""

import json

import pytest

from repro.fleet.store import FleetStore


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    return FleetStore(resolution=0.05, host_resolution=1.0, clock=clock)


def sample(job, t, name="gpu_busy_fraction", value=0.5, node=None, **extra):
    labels = {"node": node} if node else {}
    return {
        "kind": "sample", "job": job, "t": t,
        "points": [{"name": name, "labels": labels, "value": value}],
        **extra,
    }


class TestIngest:
    def test_full_job_stream(self, store):
        assert store.ingest({"kind": "job_start", "job": "j1",
                             "meta": {"app": "hpl"}, "source": "job"})
        assert store.ingest(sample("j1", 0.01, value=0.25))
        assert store.ingest({"kind": "rank_status", "job": "j1",
                             "rank": 1, "status": "aborted"})
        assert store.ingest({"kind": "job_end", "job": "j1",
                             "status": "degraded", "wallclock": 1.5})
        record = store.registry.job("j1")
        assert record.state == "finished"
        assert record.status == "degraded"
        assert record.ranks == {"1": "aborted"}
        assert store.records == 4
        assert store.samples == 1
        assert store.points == 1

    def test_spec_lifecycle_kinds_behave_like_job_kinds(self, store):
        store.ingest({"kind": "spec_start", "job": "h1", "source": "sweep"})
        assert store.registry.job("h1").state == "running"
        store.ingest({"kind": "spec_finish", "job": "h1", "status": "ok",
                      "attempts": 2, "from_cache": False})
        record = store.registry.job("h1")
        assert record.state == "finished"
        assert record.attempts == 2

    def test_missing_job_id_is_refused_and_counted(self, store):
        assert not store.ingest({"kind": "sample", "t": 0.0, "points": []})
        assert not store.ingest({"kind": "job_start", "job": ""})
        assert store.dropped == 2
        assert store.records == 0

    def test_unknown_kind_is_refused_and_counted(self, store):
        assert not store.ingest({"kind": "wat", "job": "j1"})
        assert store.dropped == 1

    def test_sample_without_points_list_is_refused(self, store):
        assert not store.ingest({"kind": "sample", "job": "j1", "t": 0.0,
                                 "points": "nope"})
        assert store.dropped == 1

    def test_malformed_points_are_skipped_not_fatal(self, store):
        assert store.ingest({
            "kind": "sample", "job": "j1", "t": 0.0,
            "points": [
                "garbage",
                {"name": 7, "labels": {}, "value": 1.0},
                {"name": "ok_metric", "labels": {}, "value": "NaNope"},
                {"name": "ok_metric", "labels": {}, "value": 2.0},
            ],
        })
        assert store.points == 1
        assert store.registry.job("j1").points == 1

    def test_hts_stamp_feeds_measured_lag(self, store, clock):
        store.ingest(sample("j1", 0.0, hts=clock.t - 0.25))
        assert store.lag.count == 1
        assert store.lag.last == pytest.approx(0.25)


class TestTimeAxes:
    def test_job_rollups_bucket_on_virtual_time(self, store):
        store.ingest(sample("j1", 0.01, value=1.0))
        store.ingest(sample("j1", 0.09, value=3.0))
        out = store.job_rollups("j1")
        series = out["metrics"]["gpu_busy_fraction"]["series"]
        assert [b["t"] for b in series] == [0.0, pytest.approx(0.05)]

    def test_node_rollups_bucket_on_host_time(self, store, clock):
        store.ingest(sample("j1", 0.0, node="dirac01", value=1.0))
        clock.t += 2.5
        store.ingest(sample("j2", 0.0, node="dirac01", value=3.0))
        out = store.node_summary("dirac01")
        series = out["metrics"]["gpu_busy_fraction"]["series"]
        # two host-seconds apart -> separate 1s buckets despite equal t
        assert len(series) == 2
        assert out["jobs"] == ["j1", "j2"]

    def test_fleet_rollups_merge_all_jobs(self, store):
        store.ingest(sample("j1", 0.0, value=1.0))
        store.ingest(sample("j2", 7.0, value=3.0))
        summary = store.fleet_summary()
        assert summary["metrics"]["gpu_busy_fraction"]["count"] == 2
        assert summary["metrics"]["gpu_busy_fraction"]["max"] == 3.0


class TestQueries:
    def test_unknown_ids_return_none(self, store):
        assert store.job_rollups("nope") is None
        assert store.node_summary("nope") is None

    def test_jobs_summary_counts_and_rows(self, store, clock):
        store.ingest({"kind": "job_start", "job": "live"})
        store.ingest({"kind": "job_start", "job": "gone"})
        clock.t += 100.0
        store.ingest(sample("live", 0.0))
        out = store.jobs_summary()
        assert out["counts"]["running"] == 1
        assert out["counts"]["stale"] == 1
        by_job = {row["job"]: row for row in out["jobs"]}
        assert by_job["gone"]["stale"] is True
        assert by_job["live"]["stale"] is False

    def test_job_rollups_read_time_downsampling(self, store):
        for i in range(4):
            store.ingest(sample("j1", i * 0.05, value=float(i)))
        fine = store.job_rollups("j1")
        coarse = store.job_rollups("j1", resolution=0.1)
        assert len(fine["metrics"]["gpu_busy_fraction"]["series"]) == 4
        assert len(coarse["metrics"]["gpu_busy_fraction"]["series"]) == 2
        assert coarse["resolution"] == 0.1

    def test_everything_is_json_serializable(self, store):
        store.ingest({"kind": "job_start", "job": "j1", "meta": {"n": 2}})
        store.ingest(sample("j1", 0.0, node="dirac01", hts=999.9))
        store.ingest({"kind": "job_end", "job": "j1", "status": "ok"})
        json.dumps(store.jobs_summary())
        json.dumps(store.job_rollups("j1"))
        json.dumps(store.nodes_summary())
        json.dumps(store.node_summary("dirac01"))
        json.dumps(store.fleet_summary())


class TestOpenMetrics:
    def test_exposition_shape(self, store):
        store.ingest({"kind": "job_start", "job": "j1"})
        store.ingest(sample("j1", 0.0, node="dirac01", value=0.5))
        body = store.openmetrics()
        assert body.endswith("# EOF\n")
        lines = body.splitlines()
        # HELP precedes TYPE for every family
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert lines[i - 1].startswith(f"# HELP {name} ")
        assert 'fleet_jobs{state="running"} 1' in body
        assert 'job_up{job="j1"} 1' in body
        assert ('job_rollup{agg="avg",job="j1",'
                'metric="gpu_busy_fraction"} 0.5') in body
        assert 'node_rollup{agg="max",metric="gpu_busy_fraction",' \
               'node="dirac01"} 0.5' in body
        assert "fleet_ingest_records_total 2" in body

    def test_label_values_are_escaped(self, store):
        store.ingest({"kind": "job_start", "job": 'we"ird\\job'})
        body = store.openmetrics()
        assert 'job_up{job="we\\"ird\\\\job"} 1' in body

    def test_rollup_name_cap_is_exposed(self, clock):
        store = FleetStore(max_metrics=1, clock=clock)
        store.ingest({
            "kind": "sample", "job": "j1", "t": 0.0,
            "points": [
                {"name": "a", "labels": {}, "value": 1.0},
                {"name": "b", "labels": {}, "value": 1.0},
            ],
        })
        assert store.fleet_summary()["rollup_names_dropped"] > 0
        assert "fleet_rollup_names_dropped_total" in store.openmetrics()
