#!/usr/bin/env python
"""Cluster-wide utilization dashboard from the streaming telemetry.

Runs a small shared-GPU HPL job with the virtual-time sampler enabled
and renders what a monitoring UI would show: per-GPU and per-node
utilization sparklines, per-rank activity rates, and the three sink
outputs (memory ring for this dashboard, ``telemetry.jsonl`` for a
collector, ``metrics.prom`` for a Prometheus scrape) plus a
Perfetto-loadable ``trace.json``.

Usage::

    PYTHONPATH=src python examples/telemetry_dashboard.py [outdir]
"""

import os
import sys

from repro.apps.hpl import HplConfig, hpl_app
from repro.cluster import run_job
from repro.core import IpmConfig
from repro.telemetry import TelemetryConfig, write_chrome_trace

_TICKS = " ▁▂▃▄▅▆▇█"


def spark(values, lo=0.0, hi=1.0, width=64):
    """Render a value sequence as a unicode sparkline (last ``width``)."""
    values = values[-width:]
    span = max(hi - lo, 1e-12)
    out = []
    for v in values:
        frac = min(max((v - lo) / span, 0.0), 1.0)
        out.append(_TICKS[round(frac * (len(_TICKS) - 1))])
    return "".join(out)


def main() -> int:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "."
    os.makedirs(outdir, exist_ok=True)
    jsonl = os.path.join(outdir, "telemetry.jsonl")
    prom = os.path.join(outdir, "metrics.prom")
    trace = os.path.join(outdir, "trace.json")

    # 4 ranks on 2 nodes — two ranks share each node's GPU, so the
    # utilization series show real contention
    result = run_job(
        lambda env: hpl_app(env, HplConfig.tiny()),
        4,
        command="./xhpl.cuda",
        ranks_per_node=2,
        ipm_config=IpmConfig(
            trace_capacity=65536,
            telemetry=TelemetryConfig(
                enabled=True,
                interval=0.050,
                sinks=("memory", "jsonl", "openmetrics"),
                jsonl_path=jsonl,
                openmetrics_path=prom,
            ),
        ),
        seed=11,
    )
    hub = result.telemetry
    store = hub.store

    print(f"HPL x4 (2 ranks/GPU): wallclock {result.wallclock:.2f}s, "
          f"{hub.ticks} sampler ticks @ {hub.config.interval * 1000:.0f}ms")
    print()
    print("GPU busy fraction")
    for series in store.series("gpu_busy_fraction"):
        gpu = dict(series.labels)["gpu"]
        values = series.values()
        mean = sum(values) / len(values)
        print(f"  gpu {gpu}   {spark(values)}  mean {mean * 100:5.1f}%")
    print()
    print("Node rollups (gpu busy | events/s | mpi fraction)")
    for series in store.series("node_gpu_busy_fraction"):
        host = dict(series.labels)["node"]
        busy = series.values()
        evs = store.get("node_events_per_sec", node=host)
        mpi = store.get("node_mpi_fraction", node=host)
        print(f"  {host}  {spark(busy)}  "
              f"ev/s {max(evs.values()) if evs else 0:8.0f}  "
              f"mpi {100 * (mpi.values()[-1] if mpi else 0):5.1f}%")
    print()
    print("Per-rank activity (latest tick)")
    for series in store.series("ipm_events_per_sec"):
        rank = dict(series.labels)["rank"]
        idle = store.latest("ipm_host_idle_fraction", rank=rank) or 0.0
        busy = store.latest("ipm_gpu_busy_fraction", rank=rank) or 0.0
        print(f"  rank {rank}  {spark(series.values(), hi=max(series.values()) or 1)}"
              f"  gpu {100 * busy:5.1f}%  host-idle {100 * idle:5.1f}%")

    write_chrome_trace(result.report, trace, store)
    print()
    for path, what in ((jsonl, "JSONL stream"), (prom, "OpenMetrics exposition"),
                       (trace, "Chrome trace (ui.perfetto.dev)")):
        print(f"wrote {path}  ({what})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
