#!/usr/bin/env python
"""Fault injection and graceful monitoring degradation.

Runs the tiny HPL model three times under a deterministic, seed-driven
:class:`~repro.faults.plan.FaultPlan`:

1. **chaos** — probabilistic CUDA launch failures plus MPI delay
   spikes: IPM tags the failing calls, accumulates ``@CUDA_ERROR``
   region time and keeps an ``ipm_errors_total`` telemetry series;
2. **brown-out** — a windowed node slowdown stretches one host's
   compute and the whole job's wallclock with it;
3. **rank death** — one rank aborts mid-factorization: the survivors'
   profiles are still harvested into a *partial* job report whose
   banner carries a per-rank status line.

Same seed, same plan => byte-identical fault schedule and reports.
"""

from repro.apps.hpl import HplConfig, hpl_app
from repro.cluster import run_job
from repro.core import IpmConfig
from repro.core.banner import banner
from repro.cuda import cudaError_t
from repro.faults import (
    CudaFaultSpec,
    FaultPlan,
    MpiDelaySpec,
    NodeSlowdownSpec,
    RankAbortSpec,
)
from repro.telemetry.config import TelemetryConfig

E = cudaError_t


def _run(faults, seed=11):
    tcfg = TelemetryConfig(enabled=True, interval=0.050, sinks=("memory",))
    return run_job(
        lambda env: hpl_app(env, HplConfig.tiny()),
        2,
        command="./xhpl.cuda",
        ipm_config=IpmConfig(telemetry=tcfg),
        seed=seed,
        faults=faults,
    )


def main() -> None:
    print("=== 1. chaos: CUDA launch failures + MPI delay spikes ===")
    chaos = FaultPlan(
        cuda=[CudaFaultSpec(call="*", error=E.cudaErrorLaunchFailure,
                            rate=0.15)],
        mpi=[MpiDelaySpec(rate=0.3, extra_mean=0.005)],
    )
    res = _run(chaos)
    by = res.report.merged_by_name()
    tagged = {n: s.count for n, s in by.items() if "(!" in n}
    print(f"wallclock {res.wallclock:.3f}s, "
          f"{len(res.faults.events)} faults fired")
    for name, count in sorted(tagged.items()):
        print(f"  {count:3d} x {name}")
    if "@CUDA_ERROR" in by:
        print(f"  @CUDA_ERROR region: {by['@CUDA_ERROR'].total:.6f}s")

    print("\n=== 2. brown-out: node 0 at one third speed for 2s ===")
    base = _run(None)
    slow = _run(FaultPlan(nodes=[NodeSlowdownSpec(multiplier=3.0, nodes=(0,),
                                                  t0=0.0, t1=2.0)]))
    print(f"baseline {base.wallclock:.3f}s -> degraded {slow.wallclock:.3f}s")

    print("\n=== 3. rank death mid-factorization ===")
    res = _run(FaultPlan(aborts=[RankAbortSpec(rank=1, at=2.0)]))
    print(banner(res.report))


if __name__ == "__main__":
    main()
