#!/usr/bin/env python
"""IPM monitoring of an OpenCL application (paper §VI).

The paper notes that "the library-based interposition monitoring
technique is similarly applicable to OpenCL."  This example runs a
small OpenCL host program — a blocked stencil with a blocking final
read-back — under IPM's OpenCL wrappers and prints the banner: the
same `@…EXEC` / `@CUDA_HOST_IDLE` anatomy as the CUDA examples, from
an entirely different API.
"""

import numpy as np

from repro.core import Ipm, IpmConfig, JobReport, banner_serial
from repro.core.ocl_wrappers import wrap_opencl
from repro.cuda import Device, Kernel
from repro.ocl import CL_QUEUE_PROFILING_ENABLE, OpenCL
from repro.simt import Simulator


def main() -> None:
    sim = Simulator()
    device = Device(sim, rng=np.random.default_rng(12))
    ipm = Ipm(sim, command="./stencil.ocl", hostname="dirac15",
              config=IpmConfig(), blocking_calls=set())
    cl = wrap_opencl(ipm, OpenCL(sim, [device], process_name="stencil.ocl"))

    def host_program():
        _, platforms = cl.clGetPlatformIDs()
        _, devices = cl.clGetDeviceIDs(platforms[0])
        _, ctx = cl.clCreateContext(devices[0])
        _, queue = cl.clCreateCommandQueue(ctx, devices[0],
                                           CL_QUEUE_PROFILING_ENABLE)
        _, program = cl.clCreateProgramWithSource(
            ctx, "__kernel void stencil(__global float* a) { ... }")
        cl.clBuildProgram(program)
        _, kern = cl.clCreateKernel(
            program, Kernel("stencil", nominal_duration=0.08))
        _, buf = cl.clCreateBuffer(ctx, 16 << 20)
        cl.clEnqueueWriteBuffer(queue, buf, True, None, 16 << 20)
        cl.clSetKernelArg(kern, 0, buf)
        for _ in range(10):
            cl.clEnqueueNDRangeKernel(queue, kern, (4096, 4096), 64)
        # blocking read: implicitly waits for the 10 pending kernels —
        # the OpenCL analogue of the paper's §III-C observation
        cl.clEnqueueReadBuffer(queue, buf, True, None, 16 << 20)
        cl.clReleaseMemObject(buf)
        cl.clReleaseKernel(kern)
        cl.clReleaseCommandQueue(queue)
        cl.clReleaseContext(ctx)

    sim.spawn(host_program, name="host")
    sim.run()
    task = ipm.finalize()
    print(banner_serial(task))
    print("\nthe blocking clEnqueueReadBuffer hid "
          f"{task.host_idle_time():.2f} s of kernel wait "
          "(@CUDA_HOST_IDLE), with the transfer itself costing "
          f"{task.table.by_name()['clEnqueueReadBuffer'].total * 1000:.1f} ms.")


if __name__ == "__main__":
    main()
