#!/usr/bin/env python
"""PARATEC scaling study (paper §IV-D, Fig. 10) — scaled-down edition.

Runs the DFT workload with thunked CUBLAS at 8/16/32/64 processes on 8
nodes (the benchmark harness runs the paper's full 32/64/128/256 on 32
nodes) plus the MKL baseline at the smallest size, and prints the
Fig. 10 breakdown: wallclock, MPI vs CUBLAS, and the contributions of
MPI_Allreduce / MPI_Wait / MPI_Gather / cublasSetMatrix /
cublasGetMatrix.  Watch MPI_Gather explode at 8 ranks/node.

The study is expressed as declarative :class:`repro.JobSpec` values
and executed as one batch through :class:`repro.SweepRunner` — the
independent configurations fan out onto worker processes, and passing
``--cache DIR`` replays previously computed points from disk
(determinism makes the cached results byte-identical to fresh runs).
"""

import sys

from repro import IpmConfig, JobSpec, ResultCache, SweepRunner
from repro.analysis import format_scaling, scaling_series
from repro.sweep import SweepReport

N_NODES = 8
PARATEC = {
    "iterations": 8,
    "gemm_calls_total": 240,
    "fft_parallel_seconds": 440.0,
    "fft_serial_seconds": 4.0,
    "gather_bytes_per_rank": 40 << 20,
}
CATEGORIES = ["MPI", "CUBLAS", "MPI_Allreduce", "MPI_Wait", "MPI_Gather",
              "cublasSetMatrix", "cublasGetMatrix"]


def spec(nprocs: int, blas: str) -> JobSpec:
    return JobSpec(
        app="paratec",
        ntasks=nprocs,
        app_params={**PARATEC, "blas": blas},
        command=f"paratec.{blas}",
        ranks_per_node=max(1, nprocs // N_NODES),
        n_nodes=N_NODES,
        ipm=IpmConfig(),
        seed=2,
    )


def main(argv=None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    cache = ResultCache(argv[argv.index("--cache") + 1]) \
        if "--cache" in argv else None
    runner = SweepRunner(cache=cache)

    sweep = runner.run(
        [spec(8, "mkl")] + [spec(n, "cublas") for n in (8, 16, 32, 64)]
    )
    mkl, cublas = sweep[0], sweep.results[1:]
    print(f"MKL BLAS baseline at 8 procs: {mkl.wallclock:.0f} s")
    for pt in cublas:
        print(f"CUBLAS at {pt.spec.ntasks:3d} procs: {pt.wallclock:.0f} s")
    if cache is not None:
        print(f"[{sweep.cache_hits} cached, {sweep.executed} simulated, "
              f"mode={sweep.mode}]")
    speedup = mkl.wallclock / cublas[0].wallclock
    print(f"\nCUBLAS vs MKL at 8 procs: {100 * (1 - 1 / speedup):.0f}% faster "
          "(paper: ~35% at 32 procs)\n")

    # the CUBLAS points (MKL baseline dropped) as a Fig. 10 table
    points = scaling_series(SweepReport(results=list(cublas)), CATEGORIES)
    print(format_scaling(points, CATEGORIES))
    print("\nNote the MPI_Gather (and the waits it causes) at "
          f"{points[-1].nprocs} procs = 8 ranks/node — the paper's NUMA "
          "effect; CUBLAS time per rank stays relatively constant.")


if __name__ == "__main__":
    main()
