#!/usr/bin/env python
"""PARATEC scaling study (paper §IV-D, Fig. 10) — scaled-down edition.

Runs the DFT workload with thunked CUBLAS at 8/16/32/64 processes on 8
nodes (the benchmark harness runs the paper's full 32/64/128/256 on 32
nodes) plus the MKL baseline at the smallest size, and prints the
Fig. 10 breakdown: wallclock, MPI vs CUBLAS, and the contributions of
MPI_Allreduce / MPI_Wait / MPI_Gather / cublasSetMatrix /
cublasGetMatrix.  Watch MPI_Gather explode at 8 ranks/node.
"""

from repro.analysis import ScalingPoint, format_scaling
from repro.apps.paratec import ParatecConfig, paratec_app
from repro.cluster import run_job
from repro.core import IpmConfig

N_NODES = 8
CONFIG = ParatecConfig(
    iterations=8,
    gemm_calls_total=240,
    fft_parallel_seconds=440.0,
    fft_serial_seconds=4.0,
    gather_bytes_per_rank=40 << 20,
)
CATEGORIES = ["MPI", "CUBLAS", "MPI_Allreduce", "MPI_Wait", "MPI_Gather",
              "cublasSetMatrix", "cublasGetMatrix"]


def measure(nprocs: int, blas: str) -> ScalingPoint:
    result = run_job(
        lambda env: paratec_app(env, CONFIG, blas=blas),
        ntasks=nprocs,
        command=f"paratec.{blas}",
        ranks_per_node=max(1, nprocs // N_NODES),
        n_nodes=N_NODES,
        ipm_config=IpmConfig(),
        seed=2,
    )
    job = result.report
    by = job.merged_by_name()
    breakdown = {
        "MPI": sum(job.domain_times("MPI")) / nprocs,
        "CUBLAS": sum(job.domain_times("CUBLAS")) / nprocs,
    }
    for name in CATEGORIES[2:]:
        breakdown[name] = (by[name].total / nprocs) if name in by else 0.0
    return ScalingPoint(nprocs, result.wallclock, breakdown)


def main() -> None:
    mkl = measure(8, "mkl")
    print(f"MKL BLAS baseline at 8 procs: {mkl.wallclock:.0f} s")
    points = []
    for nprocs in (8, 16, 32, 64):
        pt = measure(nprocs, "cublas")
        points.append(pt)
        print(f"CUBLAS at {nprocs:3d} procs: {pt.wallclock:.0f} s")
    speedup = mkl.wallclock / points[0].wallclock
    print(f"\nCUBLAS vs MKL at 8 procs: {100 * (1 - 1 / speedup):.0f}% faster "
          "(paper: ~35% at 32 procs)\n")
    print(format_scaling(points, CATEGORIES))
    print("\nNote the MPI_Gather (and the waits it causes) at "
          f"{points[-1].nprocs} procs = 8 ranks/node — the paper's NUMA "
          "effect; CUBLAS time per rank stays relatively constant.")


if __name__ == "__main__":
    main()
