#!/usr/bin/env python
"""Profile CUDA-accelerated HPL on 16 Dirac nodes (paper §IV-B/C).

Produces everything IPM produces for a real job:

* the parallel banner on stdout;
* the XML profiling log (``hpl_profile.xml``);
* the CUBE export for GUI exploration (``hpl_profile.cube``) — the
  Fig. 9 view: per-kernel, per-stream, per-node GPU time;
* an HTML report (``hpl_profile.html``).

Also prints the §IV-C observations: host idle ≈ 0 (asynchronous
transfers) and 2–5 s per task in ``cudaEventSynchronize``.
"""

import os

from repro.analysis import format_table
from repro.apps.hpl import HplConfig, hpl_app
from repro.cluster import run_job
from repro.core import IpmConfig, banner_parallel, metrics, parser, write_xml
from repro.simt import NoiseConfig

OUT = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    print("running CUDA HPL on 16 nodes (≈126 s of virtual time)...")
    result = run_job(
        lambda env: hpl_app(env, HplConfig.paper_16rank()),
        ntasks=16,
        command="./xhpl.cuda",
        ipm_config=IpmConfig(),
        noise=NoiseConfig(),
        seed=1,
    )
    job = result.report
    print(banner_parallel(job, top=12))

    # the Fig. 9 analysis: per-kernel GPU time distribution across ranks
    per_rank = metrics.kernel_time_by_rank(job)
    rows = []
    for kernel, times in sorted(per_rank.items(), key=lambda kv: -sum(kv[1])):
        rows.append([kernel, sum(times), min(times), max(times)])
    print()
    print(format_table(
        ["GPU kernel", "total[s]", "min/rank", "max/rank"], rows,
        floatfmt=".2f", title="Fig. 9 view: kernel time across 16 nodes",
    ))

    print(f"\nhost idle (async transfers): {metrics.host_idle_percent(job):.4f} %wall")
    sync_times = [r["event_sync_time"] for r in result.results]
    print(f"cudaEventSynchronize per task: {min(sync_times):.2f}–"
          f"{max(sync_times):.2f} s (paper: 2–5 s)")

    xml_path = os.path.join(OUT, "hpl_profile.xml")
    write_xml(job, xml_path)
    parser.to_cube(parser.parse_log(xml_path), os.path.join(OUT, "hpl_profile.cube"))
    parser.to_html(parser.parse_log(xml_path), os.path.join(OUT, "hpl_profile.html"),
                   title="CUDA HPL on 16 Dirac nodes")
    print(f"\nwrote {xml_path}, .cube and .html next to it")


if __name__ == "__main__":
    main()
