#!/usr/bin/env python
"""Render the paper's Fig. 7 timeline from a real traced run.

Fig. 7 is a hand-drawn schematic of IPM's CUDA monitoring: the
asynchronous launch, the events bracketing the kernel on the GPU, and
the blocking memcpy whose wait IPM separates.  With the opt-in trace
ring (`IpmConfig(trace_capacity=…)`) the same picture can be rendered
from an actual monitored execution.
"""

from repro.apps.square import SquareConfig, square_app
from repro.cluster import run_job
from repro.core import IpmConfig
from repro.core.trace import render_timeline


def main() -> None:
    captured = []

    def app(env):
        captured.append(env.ipm)
        return square_app(env, SquareConfig(n=20_000, repeat=5_000))

    # host-idle separation off so the blocking memcpy's traced window
    # shows the raw implicit wait (the thing Fig. 7 explains)
    run_job(app, 1, command="./cuda.ipm",
            ipm_config=IpmConfig(trace_capacity=256, host_idle=False),
            seed=15)
    trace = captured[0].trace
    # drop context creation so the interesting part fills the width
    records = [r for r in trace.records() if r.name != "cudaMalloc"]
    print("Fig. 7 — the monitoring timeline, from a traced run:")
    print()
    print(render_timeline(records, width=78))
    print()
    print("top lane: host-side CUDA calls (cudaLaunch returns instantly;")
    print("the blocking cudaMemcpy(D2H) spans the kernel's remainder).")
    print("bottom lane: the kernel executing on the GPU, timed by the")
    print("events IPM inserted around the launch.")


if __name__ == "__main__":
    main()
