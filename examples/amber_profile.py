#!/usr/bin/env python
"""Amber/PMEMD profile on 16 Dirac nodes (paper §IV-E, Fig. 11).

Prints the parallel banner and the §IV-E analysis: GPU utilization,
host idle, the per-kernel GPU-time shares of the 39 kernels, and the
cross-rank load imbalance that IPM's per-rank data exposes
(ReduceForces/ClearForces up to ~55 %).
"""

from repro.analysis import format_table
from repro.apps.amber import AmberConfig, amber_app
from repro.cluster import run_job
from repro.core import IpmConfig, banner_parallel, metrics
from repro.cuda.costmodel import GpuTimingModel
from repro.simt import NoiseConfig


def main() -> None:
    gpu_timing = GpuTimingModel()
    gpu_timing.device_enum_time = 0.5225   # busy-system device probing
    gpu_timing.context_init_sigma = 0.01   # warm, homogeneous driver state
    print("running pmemd.cuda.MPI (JAC DHFR) on 16 nodes...")
    result = run_job(
        lambda env: amber_app(env, AmberConfig(steps=150)),
        ntasks=16,
        command="pmemd.cuda.MPI -O -i mdin -c inpcrd.equil",
        ipm_config=IpmConfig(),
        gpu_timing=gpu_timing,
        noise=NoiseConfig(jitter_mean=0.001, daemon_rate=0.02,
                          daemon_mean=0.002),
        seed=4,
    )
    job = result.report
    print(banner_parallel(job, top=14))

    print(f"\nGPU utilization : {metrics.gpu_utilization(job):6.2f} %wall "
          "(paper: 35.96)")
    print(f"host idle       : {metrics.host_idle_percent(job):6.2f} %wall "
          "(paper: 0.08)")
    print(f"%comm           : {metrics.comm_percent(job):6.2f} "
          "(paper: 0.60)")

    shares = metrics.kernel_share(job)
    imb = metrics.kernel_imbalance(job)
    rows = [
        [k, 100 * v, 100 * imb[k].imbalance]
        for k, v in sorted(shares.items(), key=lambda kv: -kv[1])[:8]
    ]
    print()
    print(format_table(
        ["GPU kernel", "share of GPU time [%]", "imbalance (max-avg)/avg [%]"],
        rows, floatfmt=".1f",
        title="top kernels (paper: 37/18/10/8/7 %, imbalance up to 55 %)",
    ))


if __name__ == "__main__":
    main()
