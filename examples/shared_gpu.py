#!/usr/bin/env python
"""GPU sharing between MPI ranks (issue 5 of the paper's introduction).

"In the shared GPU case, the kernel performance might be dramatically
different in the production MPI case compared to an isolated
workstation setting."  This example runs the same GPU-heavy rank
program with one rank per GPU and with four ranks sharing each GPU,
and shows how IPM's per-rank @CUDA_EXEC data reveals the contention —
something a single-kernel workstation profiler cannot see.
"""

from repro.analysis import format_table
from repro.cluster import run_job
from repro.core import IpmConfig, metrics
from repro.cuda import Kernel, cudaMemcpyKind
from repro.cuda.memory import HostRef

K = cudaMemcpyKind


def rank_program(env):
    rt = env.rt
    _, buf = rt.cudaMalloc(32 << 20)
    env.mpi.MPI_Barrier()
    t0 = env.sim.now
    for _ in range(25):
        rt.launch(Kernel("stencil", nominal_duration=0.004), 256, 128,
                  args=(buf,))
        rt.launch(Kernel("reduce", nominal_duration=0.001), 64, 128,
                  args=(buf,))
        rt.cudaMemcpy(HostRef(1 << 20), buf, 1 << 20, K.cudaMemcpyDeviceToHost)
    env.mpi.MPI_Barrier()
    rt.cudaFree(buf)
    return env.sim.now - t0


def run(ranks_per_node: int):
    return run_job(
        rank_program, ntasks=8, ranks_per_node=ranks_per_node,
        command=f"stencil.x ({ranks_per_node}/GPU)",
        ipm_config=IpmConfig(), seed=3,
    )


def main() -> None:
    exclusive = run(1)
    shared = run(4)
    rows = []
    for label, res in (("1 rank / GPU", exclusive), ("4 ranks / GPU", shared)):
        job = res.report
        by = job.merged_by_name()
        rows.append([
            label,
            max(res.results),
            metrics.gpu_utilization(job),
            by["@CUDA_HOST_IDLE"].total / job.ntasks if "@CUDA_HOST_IDLE" in by else 0.0,
        ])
    print(format_table(
        ["configuration", "compute loop [s]", "GPU util [%wall]",
         "host idle [s/rank]"],
        rows, floatfmt=".3f",
        title="the same binary, exclusive vs shared GPU:",
    ))
    slowdown = max(shared.results) / max(exclusive.results)
    print(f"\nsharing slows the compute loop {slowdown:.1f}x — visible only "
          "when the whole parallel job is monitored.")


if __name__ == "__main__":
    main()
