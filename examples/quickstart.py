#!/usr/bin/env python
"""Quickstart: the paper's running example (Figs. 3–6).

Runs the repeated-squaring CUDA program of Fig. 3 under IPM at the
three monitoring levels of the paper and prints the three banners:

1. host-side timing only                (Fig. 4)
2. + GPU kernel timing (@CUDA_EXEC)     (Fig. 5)
3. + implicit host blocking (@CUDA_HOST_IDLE)  (Fig. 6)

Note how the large ``cudaMemcpy(D2H)`` time of level 1 is revealed to
be GPU-kernel wait time at level 3 — the "missed opportunity for
overlap" the paper's method exposes.
"""

from repro.apps.square import SquareConfig, square_app
from repro.cluster import run_job
from repro.core import IpmConfig, banner_serial

LEVELS = [
    ("Fig. 4 — host-side timing only",
     IpmConfig(kernel_timing=False, host_idle=False)),
    ("Fig. 5 — with GPU kernel timing",
     IpmConfig(kernel_timing=True, host_idle=False)),
    ("Fig. 6 — with kernel timing and host-idle identification",
     IpmConfig(kernel_timing=True, host_idle=True)),
]


def main() -> None:
    for title, config in LEVELS:
        result = run_job(
            lambda env: square_app(env, SquareConfig()),
            ntasks=1,
            command="./cuda.ipm",
            ipm_config=config,
            seed=15,
        )
        print(f"\n=== {title} ===")
        print(banner_serial(result.report.tasks[0]))

    # end-to-end data check: the kernel really squares the array
    verified = run_job(
        lambda env: square_app(env, SquareConfig(n=1024, repeat=2, verify=True)),
        ntasks=1,
        seed=15,
    )
    print(f"\ndata verification: square(1024) round-trip OK, "
          f"last element = {verified.results[0]:.0f}")


if __name__ == "__main__":
    main()
