#!/usr/bin/env python
"""Automated performance guidance from IPM profiles (paper §VI).

The paper's third future-work item: "using the derived monitoring data
for performance modeling and advanced guidance to users on the merits
or pitfalls of accelerating their applications."  This example profiles
three workloads and lets the rule engine rediscover the paper's own
per-application recommendations:

* Amber → use the CPU during GPU waits; rebalance ReduceForces;
* PARATEC → escape the thunking wrappers' blocking transfers;
* a naive offload → offloading too little to pay for the transfers.
"""

from repro.apps.amber import AmberConfig, amber_app
from repro.apps.paratec import ParatecConfig, paratec_app
from repro.cluster import run_job
from repro.core import IpmConfig
from repro.core.advisor import advise, format_findings
from repro.cuda import Kernel, cudaMemcpyKind
from repro.cuda.costmodel import GpuTimingModel
from repro.cuda.memory import HostRef

K = cudaMemcpyKind


def naive_offload(env):
    """Tiny kernels behind big synchronous transfers: a GPU port that
    should not have been one."""
    rt = env.rt
    _, buf = rt.cudaMalloc(64 << 20)
    for _ in range(20):
        rt.cudaMemcpy(buf, HostRef(64 << 20), 64 << 20, K.cudaMemcpyHostToDevice)
        rt.launch(Kernel("tiny_axpy", nominal_duration=300e-6), 64, 64)
        rt.cudaMemcpy(HostRef(64 << 20), buf, 64 << 20, K.cudaMemcpyDeviceToHost)
    rt.cudaFree(buf)


def main() -> None:
    gt = GpuTimingModel()
    gt.context_init_sigma = 0.01

    print("=== Amber (16 nodes, scaled) ===")
    amber = run_job(lambda env: amber_app(env, AmberConfig(steps=60)), 16,
                    command="pmemd.cuda.MPI", ipm_config=IpmConfig(),
                    gpu_timing=gt, seed=4)
    print(format_findings(advise(amber.report)))

    print("\n=== PARATEC with thunking CUBLAS (scaled) ===")
    paratec = run_job(
        lambda env: paratec_app(env, ParatecConfig.tiny()), 8,
        command="paratec.cublas", ranks_per_node=2, ipm_config=IpmConfig(),
        seed=2,
    )
    print(format_findings(advise(paratec.report)))

    print("\n=== naive offload ===")
    naive = run_job(naive_offload, 2, command="naive.x",
                    ipm_config=IpmConfig(), seed=7)
    print(format_findings(advise(naive.report)))


if __name__ == "__main__":
    main()
