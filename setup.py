"""Setup shim.

The environment has no ``wheel`` package and no network, so PEP 517
editable installs fail; this shim enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
